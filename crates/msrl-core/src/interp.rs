//! The operator interpreter: msrl-rs's stand-in for a DL engine backend.
//!
//! Workers in the original system generate executable code for their
//! fragments and hand it to MindSpore, which compiles the operator graph
//! for the device (§5.2). Here, [`Interpreter::eval`] plays the engine:
//! compute nodes evaluate through `msrl-tensor` operators, and stateful RL
//! macro ops (environment stepping, replay buffers, learning) dispatch to
//! *kernels* registered by the runtime — the analogue of the generated
//! `Fragment.run()` code binding `MSRL.env_step()` to component objects.
//!
//! # Execution model
//!
//! Evaluation walks nodes in ascending id order (tracing appends
//! topologically), but independent *pure* compute nodes are grouped into
//! dependency levels and, under [`msrl_tensor::Backend::Threaded`], a
//! sufficiently large level evaluates concurrently on scoped threads —
//! the intra-fragment analogue of a DL engine scheduling independent
//! operators in parallel streams. Macro ops act as barriers and always
//! run serially in ascending id order, so stateful kernels observe
//! exactly the same invocation sequence under every backend.
//!
//! Values live in a dense arena indexed by [`NodeId`]. Inputs are passed
//! to operators by reference (no per-node clones), and
//! [`Interpreter::eval_fragment_outputs`] additionally refcounts each
//! value's remaining consumers: a dead intermediate's buffer is returned
//! to the [`msrl_tensor::alloc`] pool, so steady-state fragment
//! evaluation reuses storage instead of allocating per node.
//!
//! # Telemetry
//!
//! Fragment evaluations record `fragment.eval` spans labelled with the
//! fragment id, macro-op kernel invocations record `interp.macro` spans,
//! and the pure-batch flush a macro op must wait for records an
//! `interp.barrier_wait` span (all no-ops unless `MSRL_TRACE` is set).
//! The always-on `interp.ops` counter totals evaluated nodes; with
//! tracing enabled, per-op-class totals land under `interp.op.<Name>`.
//!
//! # Kernel tier
//!
//! A cached plan that keeps getting replayed is *hot*: once its
//! execution count reaches `MSRL_TIER_THRESHOLD` (default 3) and
//! `MSRL_TIER` is not `0`, the interpreter promotes it — every `MatMul`
//! or fused-linear op whose weight input is a [`OpKind::Param`] of at
//! least 64×64 elements gets that weight packed once into the
//! register-tiled layout of [`msrl_tensor::kernels`], and the packed
//! buffers ride along inside the swapped-in plan. Steady-state hot-plan
//! evaluation then performs **zero** packing and zero kernel selection
//! per call (observable: the `tensor.pack_b` counter goes flat while
//! `interp.plan_cache.hit` keeps climbing). Rebinding any parameter
//! bumps the interpreter's params epoch, which invalidates packed
//! weights and triggers a repack at the next promotion check. Packed
//! kernels replay the naive per-element accumulation order, so tiered
//! results are bit-identical to `MSRL_TIER=0` (property-tested in
//! `msrl-tensor`).

use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use msrl_tensor::{kernels, ops, par, Tensor};

use crate::compile::{self, CompiledPlan, ExecOp, PlanOp, Step, TierData};
use crate::fragment::Fragment;
use crate::graph::{DataflowGraph, NodeId, OpKind, OpNode};
use crate::{FdgError, Result};

/// A stateful kernel for macro ops. Receives the node being evaluated and
/// references to its input values; returns the node's output.
pub type Kernel<'a> = Box<dyn FnMut(&OpNode, &[&Tensor]) -> Result<Tensor> + 'a>;

/// The dense value arena plus out-of-graph preset survivors produced by
/// one evaluation run.
type RunState = (Vec<Option<Tensor>>, Vec<(NodeId, Tensor)>);

/// Identity of one evaluation request, used as the compiled-plan cache
/// key. The graph contributes its process-unique
/// [`DataflowGraph::stamp`], so no node contents are hashed; the rest
/// pins everything [`compile::compile`] depends on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PlanKey {
    stamp: u64,
    ids: Vec<NodeId>,
    presets: Vec<NodeId>,
    outputs: Option<Vec<NodeId>>,
    fusion: bool,
}

/// One cached plan plus the execution count and accumulated evaluation
/// time that drive kernel-tier promotion.
struct PlanEntry {
    plan: Rc<CompiledPlan>,
    execs: u64,
    /// Wall time this plan has spent in [`Interpreter::run_plan`], in
    /// nanoseconds — the per-plan share of the always-on `fragment.eval`
    /// histogram's measurements. Accumulated only while a time floor is
    /// configured ([`tier_min_ns`] > 0) and the tier gate is on; zero
    /// otherwise.
    eval_ns: u64,
}

/// Minimum weight element count (`k * n`) worth packing at promotion:
/// below this the pack amortisation never pays for itself.
const TIER_MIN_WEIGHT_ELEMS: usize = 64 * 64;

/// Executions of a cached plan before it tiers up (`MSRL_TIER_THRESHOLD`,
/// default 3), resolved once per process.
fn tier_threshold() -> u64 {
    static T: OnceLock<u64> = OnceLock::new();
    *T.get_or_init(|| {
        std::env::var("MSRL_TIER_THRESHOLD").ok().and_then(|s| s.parse().ok()).unwrap_or(3)
    })
}

/// Scoped override for [`tier_min_ns`]; `u64::MAX` means "no override,
/// use the environment".
static TIER_MIN_NS_OVERRIDE: AtomicU64 = AtomicU64::new(u64::MAX);

/// Accumulated per-plan evaluation time (ns) a count-hot plan must also
/// reach before it pays packing (`MSRL_TIER_MIN_NS`, default 0 =
/// promote on execution count alone, the pre-existing behaviour).
///
/// This is the time-aware half of tier-up: plans that are *frequent but
/// cheap* — their share of the always-on `fragment.eval` histogram is
/// negligible — stay tier-0 instead of paying pack cost they can never
/// amortize, accounted by `interp.tier.skipped_cold`.
fn tier_min_ns() -> u64 {
    let o = TIER_MIN_NS_OVERRIDE.load(Ordering::Relaxed);
    if o != u64::MAX {
        return o;
    }
    static T: OnceLock<u64> = OnceLock::new();
    *T.get_or_init(|| {
        std::env::var("MSRL_TIER_MIN_NS").ok().and_then(|s| s.parse().ok()).unwrap_or(0)
    })
}

/// Runs `f` with the tier-up time floor forced to `ns` (test/bench
/// hook; the environment value is restored afterwards).
pub fn with_tier_min_ns<R>(ns: u64, f: impl FnOnce() -> R) -> R {
    let prev = TIER_MIN_NS_OVERRIDE.swap(ns, Ordering::SeqCst);
    let out = f();
    TIER_MIN_NS_OVERRIDE.store(prev, Ordering::SeqCst);
    out
}

/// Evaluates dataflow (sub)graphs.
#[derive(Default)]
pub struct Interpreter<'a> {
    kernels: HashMap<&'static str, Kernel<'a>>,
    /// Values for `Input` nodes, by name.
    pub inputs: HashMap<String, Tensor>,
    /// Values for `Param` nodes, by name.
    pub params: HashMap<String, Tensor>,
    /// Values for `Const` nodes, by id.
    pub consts: HashMap<NodeId, Tensor>,
    /// Compiled plans by request identity. Bounded by the number of
    /// distinct (graph, fragment, outputs) requests this interpreter
    /// serves — a handful per worker in practice.
    plans: HashMap<PlanKey, PlanEntry>,
    /// Bumped on every [`Self::bind_param`]; tiered plans remember the
    /// epoch they packed at, so stale packed weights are never used.
    /// (Pointer identity would be unsound here — the buffer pool
    /// recycles storage, so a *new* param value can alias an old
    /// allocation.)
    params_epoch: u64,
}

/// The read-only bindings pure nodes evaluate against; shared with worker
/// threads during level-parallel evaluation (kernels, which are neither
/// `Sync` nor pure, never cross a thread boundary).
struct Bindings<'b> {
    inputs: &'b HashMap<String, Tensor>,
    params: &'b HashMap<String, Tensor>,
    consts: &'b HashMap<NodeId, Tensor>,
}

impl<'a> Interpreter<'a> {
    /// Creates an interpreter with no kernels or bindings.
    pub fn new() -> Self {
        Interpreter::default()
    }

    /// Registers the kernel for a macro op (keyed by [`OpKind::name`]).
    pub fn register(&mut self, op: &'static str, kernel: Kernel<'a>) {
        self.kernels.insert(op, kernel);
    }

    /// Binds an input by name.
    pub fn bind_input(&mut self, name: &str, value: Tensor) {
        self.inputs.insert(name.to_string(), value);
    }

    /// Binds a parameter by name. Rebinding invalidates any packed
    /// kernel-tier weights; hot plans repack on their next execution.
    pub fn bind_param(&mut self, name: &str, value: Tensor) {
        self.params_epoch += 1;
        self.params.insert(name.to_string(), value);
    }

    /// Evaluates the whole graph; returns every node's value.
    ///
    /// # Errors
    ///
    /// Returns an error on missing bindings/kernels or tensor failures.
    pub fn eval(&mut self, graph: &DataflowGraph) -> Result<Vec<Tensor>> {
        let ids: Vec<NodeId> = (0..graph.len()).collect();
        let (mut values, _extra) = self.run(graph, &ids, HashMap::new(), None)?;
        ids.iter().map(|&i| values[i].take().ok_or(FdgError::MissingInput { node: i })).collect()
    }

    /// Evaluates one fragment. `preset` supplies values for entry
    /// boundary nodes (data received over the fragment's entry
    /// interface); returns the values of all evaluated nodes, from which
    /// exit payloads can be read.
    ///
    /// # Errors
    ///
    /// Returns an error on missing bindings/kernels or tensor failures.
    pub fn eval_fragment(
        &mut self,
        graph: &DataflowGraph,
        fragment: &Fragment,
        preset: HashMap<NodeId, Tensor>,
    ) -> Result<HashMap<NodeId, Tensor>> {
        let _span = msrl_telemetry::span!("fragment.eval", fragment.id.0);
        let _hist = msrl_telemetry::static_histogram!("fragment.eval").time();
        let _attr = msrl_telemetry::step(msrl_telemetry::StepClass::Eval);
        let (values, extra) = self.run(graph, &fragment.all_nodes(), preset, None)?;
        let mut out: HashMap<NodeId, Tensor> =
            values.into_iter().enumerate().filter_map(|(id, v)| v.map(|t| (id, t))).collect();
        out.extend(extra);
        Ok(out)
    }

    /// Evaluates one fragment and returns only the requested `outputs`
    /// (typically its exit-interface nodes).
    ///
    /// This is the steady-state execution path: values are refcounted by
    /// remaining consumers, and every tensor that is neither requested
    /// nor needed again is recycled into the [`msrl_tensor::alloc`]
    /// buffer pool the moment its last consumer has run, so repeated
    /// fragment evaluation approaches zero allocations per step.
    ///
    /// # Errors
    ///
    /// Returns an error on missing bindings/kernels, tensor failures, or
    /// if an output id was not evaluated.
    pub fn eval_fragment_outputs(
        &mut self,
        graph: &DataflowGraph,
        fragment: &Fragment,
        preset: HashMap<NodeId, Tensor>,
        outputs: &[NodeId],
    ) -> Result<HashMap<NodeId, Tensor>> {
        let _span = msrl_telemetry::span!("fragment.eval", fragment.id.0);
        let _hist = msrl_telemetry::static_histogram!("fragment.eval").time();
        let _attr = msrl_telemetry::step(msrl_telemetry::StepClass::Eval);
        let (mut values, extra) = self.run(graph, &fragment.all_nodes(), preset, Some(outputs))?;
        let mut out = HashMap::with_capacity(outputs.len());
        for &id in outputs {
            let v =
                values.get_mut(id).and_then(Option::take).ok_or(FdgError::UnknownNode { id })?;
            out.insert(id, v);
        }
        // Whatever survives (dead ends, unconsumed presets) feeds the pool.
        for v in values.into_iter().flatten() {
            v.recycle();
        }
        for (_, v) in extra {
            v.recycle();
        }
        Ok(out)
    }

    /// The evaluation engine behind all public entry points: looks up
    /// (or compiles and caches) the [`CompiledPlan`] for this request,
    /// then replays it. Steady-state evaluation therefore does zero
    /// per-call planning — no topology sort, no consumer counting —
    /// which the always-on `interp.plan_cache.hit` / `.miss` counters
    /// make observable.
    ///
    /// Returns the dense value arena plus any preset entries whose ids
    /// lie outside the graph (kept so callers see presets round-trip).
    /// `retain` switches on consumer refcounting: `Some(keep)` recycles
    /// every value not in `keep` once its last in-set consumer has run.
    fn run(
        &mut self,
        graph: &DataflowGraph,
        ids: &[NodeId],
        preset: HashMap<NodeId, Tensor>,
        retain: Option<&[NodeId]>,
    ) -> Result<RunState> {
        let n = graph.len();
        let mut presets: Vec<NodeId> = preset.keys().copied().collect();
        presets.sort_unstable();
        let mut sorted = ids.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let key = PlanKey {
            stamp: graph.stamp(),
            ids: sorted,
            presets,
            outputs: retain.map(|outs| {
                let mut v = outs.to_vec();
                v.sort_unstable();
                v.dedup();
                v
            }),
            fusion: par::fusion_enabled(),
        };
        let plan = if let Some(entry) = self.plans.get_mut(&key) {
            msrl_telemetry::static_counter!("interp.plan_cache.hit").add(1);
            entry.execs += 1;
            Rc::clone(&entry.plan)
        } else {
            msrl_telemetry::static_counter!("interp.plan_cache.miss").add(1);
            let p = Rc::new(compile::compile(graph, &key.ids, &key.presets, retain, key.fusion)?);
            self.plans.insert(key.clone(), PlanEntry { plan: Rc::clone(&p), execs: 1, eval_ns: 0 });
            p
        };
        let plan = self.maybe_promote(graph, &key, plan);

        let mut values: Vec<Option<Tensor>> = (0..n).map(|_| None).collect();
        let mut extra: Vec<(NodeId, Tensor)> = Vec::new();
        for (id, v) in preset {
            if id < n {
                values[id] = Some(v);
            } else {
                extra.push((id, v));
            }
        }
        // Per-plan eval-time accounting for the time-aware tier-up:
        // only measured while a time floor is configured and this plan
        // could still promote — steady-state hot plans pay nothing.
        let t0 = (par::tier_enabled()
            && tier_min_ns() > 0
            && plan.tier.as_ref().is_none_or(|t| t.epoch != self.params_epoch))
        .then(std::time::Instant::now);
        self.run_plan(graph, &plan, &mut values, &extra)?;
        if let Some(t0) = t0 {
            if let Some(entry) = self.plans.get_mut(&key) {
                entry.eval_ns = entry.eval_ns.saturating_add(t0.elapsed().as_nanos() as u64);
            }
        }
        Ok((values, extra))
    }

    /// Kernel-tier promotion check, run once per evaluation: when the
    /// plan is hot (execution count at [`tier_threshold`]), the tier
    /// gate is on, and the plan has no tier data packed at the current
    /// params epoch, pack every qualifying weight once and swap a
    /// tiered clone of the plan into the cache. Qualifying ops are
    /// `MatMul` and fused-linear pure ops whose weight input is a
    /// rank-2 [`OpKind::Param`] of at least [`TIER_MIN_WEIGHT_ELEMS`]
    /// elements. Promotion happens at most once per (plan, epoch):
    /// even a plan with no qualifying weights records empty tier data
    /// so the walk never repeats.
    fn maybe_promote(
        &mut self,
        graph: &DataflowGraph,
        key: &PlanKey,
        plan: Rc<CompiledPlan>,
    ) -> Rc<CompiledPlan> {
        if !par::tier_enabled() {
            return plan;
        }
        let stats = self.plans.get(key).map(|e| (e.execs, e.eval_ns));
        let hot = stats.is_some_and(|(execs, _)| execs >= tier_threshold());
        if !hot || plan.tier.as_ref().is_some_and(|t| t.epoch == self.params_epoch) {
            return plan;
        }
        // Time-aware gate: a count-hot plan must also be hot *in time*
        // (its accumulated run_plan share, the per-plan slice of the
        // always-on `fragment.eval` histogram) before packing pays.
        let min_ns = tier_min_ns();
        if min_ns > 0 && stats.is_some_and(|(_, ns)| ns < min_ns) {
            msrl_telemetry::static_counter!("interp.tier.skipped_cold").add(1);
            return plan;
        }
        let mut packed = HashMap::new();
        for op in plan.steps.iter().flat_map(|s| match s {
            Step::Pure { levels, .. } => levels.iter().flatten().collect::<Vec<_>>(),
            Step::Macro { .. } => Vec::new(),
        }) {
            let tierable = match &op.op {
                PlanOp::Node(node) => node.kind == OpKind::MatMul,
                PlanOp::LinearAct(_) => true,
                _ => false,
            };
            let Some(&wid) = op.inputs.get(1).filter(|_| tierable) else { continue };
            if packed.contains_key(&wid) {
                continue;
            }
            let Ok(wnode) = graph.node(wid) else { continue };
            let OpKind::Param { name } = &wnode.kind else { continue };
            let Some(w) = self.params.get(name) else { continue };
            let [k, n] = *w.shape() else { continue };
            if k * n >= TIER_MIN_WEIGHT_ELEMS {
                packed.insert(wid, kernels::pack_b(w.data(), k, n));
            }
        }
        let tiered = Rc::new(CompiledPlan {
            tier: Some(TierData { packed, epoch: self.params_epoch }),
            ..(*plan).clone()
        });
        if let Some(entry) = self.plans.get_mut(key) {
            entry.plan = Rc::clone(&tiered);
        }
        msrl_telemetry::static_counter!("interp.tier.promoted").add(1);
        tiered
    }

    /// Replays a compiled plan: macro steps run serially on registered
    /// kernels, pure steps level-parallel through [`Self::exec_pure`].
    fn run_plan(
        &mut self,
        graph: &DataflowGraph,
        plan: &CompiledPlan,
        values: &mut [Option<Tensor>],
        extra: &[(NodeId, Tensor)],
    ) -> Result<()> {
        let mut uses = plan.uses.clone();
        // Resolve the tier gate once per replay; a stash holds buffers
        // of dead donors until their planned cross-level stealer runs.
        let tier = plan.tier.as_ref().filter(|_| par::tier_enabled());
        let mut stash: HashMap<NodeId, Vec<f32>> = HashMap::new();
        let result = (|| {
            for step in &plan.steps {
                match step {
                    Step::Pure { levels, before_macro } => {
                        let _wait =
                            before_macro.then(|| msrl_telemetry::span!("interp.barrier_wait"));
                        self.exec_pure(
                            levels,
                            values,
                            extra,
                            &mut uses,
                            &plan.keep,
                            &plan.donors,
                            &mut stash,
                            tier,
                        )?;
                    }
                    Step::Macro { id, inputs } => {
                        let node = graph.node(*id)?;
                        let ins = gather(inputs, values, extra)
                            .ok_or(FdgError::MissingInput { node: *id })?;
                        let name = node.kind.name();
                        let kernel = self
                            .kernels
                            .get_mut(name)
                            .ok_or_else(|| FdgError::MissingKernel { op: name.to_string() })?;
                        msrl_telemetry::static_counter!("interp.ops").add(1);
                        if msrl_telemetry::enabled() {
                            msrl_telemetry::counter(&format!("interp.op.{name}"), 1);
                        }
                        let v = {
                            let _macro = msrl_telemetry::span!("interp.macro");
                            kernel(node, &ins)?
                        };
                        values[*id] = Some(v);
                        release(inputs, values, &mut uses, &plan.keep, &plan.donors, &mut stash);
                    }
                }
            }
            Ok(())
        })();
        // Stealers skipped at runtime (parallel level, shape fallback,
        // early error) leave their donation unclaimed: feed the pool.
        for (_, buf) in stash.drain() {
            msrl_tensor::alloc::give(buf);
        }
        result
    }

    /// Executes one pure step's pre-computed levels; a level with enough
    /// independent work runs on scoped threads (results land in id order
    /// either way, so the two schedules are indistinguishable). Serial
    /// levels honour each op's in-place hint, running fused chains
    /// directly in a dying input's buffer.
    #[allow(clippy::too_many_arguments)]
    fn exec_pure(
        &self,
        levels: &[Vec<ExecOp>],
        values: &mut [Option<Tensor>],
        extra: &[(NodeId, Tensor)],
        uses: &mut [usize],
        keep: &[bool],
        donors: &HashMap<NodeId, NodeId>,
        stash: &mut HashMap<NodeId, Vec<f32>>,
        tier: Option<&TierData>,
    ) -> Result<()> {
        let count: usize = levels.iter().map(Vec::len).sum();
        msrl_telemetry::static_counter!("interp.ops").add(count as u64);
        if msrl_telemetry::enabled() {
            // Per-op-class attribution costs a map walk and a by-name
            // registry add per class, so it only runs under MSRL_TRACE.
            let mut by_class: HashMap<&'static str, u64> = HashMap::new();
            for op in levels.iter().flatten() {
                *by_class.entry(op.op.class()).or_default() += 1;
            }
            for (name, n) in by_class {
                msrl_telemetry::counter(&format!("interp.op.{name}"), n);
            }
        }
        let bind = Bindings { inputs: &self.inputs, params: &self.params, consts: &self.consts };

        for level in levels {
            let work: usize = level.iter().map(|op| op.workload).sum();
            if level.len() > 1 && par::should_parallelize(work, par::PAR_MIN_ELEMS) {
                let mut jobs: Vec<(&ExecOp, Vec<&Tensor>)> = Vec::with_capacity(level.len());
                for op in level {
                    let ins = gather(&op.inputs, values, extra)
                        .ok_or(FdgError::MissingInput { node: op.id })?;
                    jobs.push((op, ins));
                }
                let results: Vec<Result<Tensor>> = par::map_ranges(jobs.len(), |r| {
                    r.map(|j| exec_op(&bind, jobs[j].0, &jobs[j].1, tier)).collect::<Vec<_>>()
                })
                .into_iter()
                .flatten()
                .collect();
                for (op, res) in level.iter().zip(results) {
                    values[op.id] = Some(res?);
                }
            } else {
                for op in level {
                    let v = self.exec_serial(&bind, op, values, extra, stash, tier)?;
                    values[op.id] = Some(v);
                }
            }
            for op in level {
                release(&op.inputs, values, uses, keep, donors, stash);
            }
        }
        Ok(())
    }

    /// Serial execution of one op, taking the in-place route when the
    /// liveness plan donated an input buffer and it actually matches at
    /// runtime (presets may have unexpected shapes; then we fall back).
    /// Chain ops with no same-level donor may instead claim a stashed
    /// cross-level donation, writing their output straight into it.
    fn exec_serial(
        &self,
        bind: &Bindings<'_>,
        op: &ExecOp,
        values: &mut [Option<Tensor>],
        extra: &[(NodeId, Tensor)],
        stash: &mut HashMap<NodeId, Vec<f32>>,
        tier: Option<&TierData>,
    ) -> Result<Tensor> {
        if let (PlanOp::EwChain(prog), Some(p)) = (&op.op, op.inplace) {
            let donor = op.inputs[p];
            let fits =
                values.get(donor).and_then(Option::as_ref).is_some_and(|t| t.shape() == op.shape);
            if fits && gather(&op.inputs, values, extra).is_some() {
                let own = values[donor].take().expect("donor presence checked above");
                let others: Vec<Option<&Tensor>> = op
                    .inputs
                    .iter()
                    .enumerate()
                    .map(|(k, &i)| {
                        if k == p {
                            None
                        } else {
                            values
                                .get(i)
                                .and_then(Option::as_ref)
                                .or_else(|| extra.iter().find(|(e, _)| *e == i).map(|(_, v)| v))
                        }
                    })
                    .collect();
                return compile::run_ew_inplace(prog, own, p, &others);
            }
        }
        if let PlanOp::EwChain(prog) = &op.op {
            let vol: usize = op.shape.iter().product();
            if stash.get(&op.id).is_some_and(|b| b.len() == vol) {
                if let Some(ins) = gather(&op.inputs, values, extra) {
                    let data = stash.remove(&op.id).expect("stash presence checked above");
                    return compile::run_ew_into(prog, &ins, &op.shape, data);
                }
            }
        }
        let ins =
            gather(&op.inputs, values, extra).ok_or(FdgError::MissingInput { node: op.id })?;
        exec_op(bind, op, &ins, tier)
    }
}

/// Executes one planned pure op. When tier data carries a packed weight
/// for the op's second input, matmul-family ops dispatch straight to the
/// pre-packed kernels — no packing, no layout decisions per call.
fn exec_op(
    bind: &Bindings<'_>,
    op: &ExecOp,
    ins: &[&Tensor],
    tier: Option<&TierData>,
) -> Result<Tensor> {
    if let Some(bp) = tier.and_then(|t| op.inputs.get(1).and_then(|wid| t.packed.get(wid))) {
        match &op.op {
            PlanOp::Node(node) if node.kind == OpKind::MatMul && ins.len() >= 2 => {
                return Ok(ops::matmul_prepacked(ins[0], bp)?);
            }
            PlanOp::LinearAct(act) if ins.len() >= 3 => {
                return Ok(ops::linear_act_prepacked(ins[0], bp, ins[2], *act)?);
            }
            _ => {}
        }
    }
    match &op.op {
        PlanOp::Node(node) => eval_pure(bind, node, ins),
        PlanOp::LinearAct(act) => {
            if ins.len() < 3 {
                return Err(FdgError::MissingInput { node: op.id });
            }
            Ok(ops::linear_act(ins[0], ins[1], ins[2], *act)?)
        }
        PlanOp::LinearSoftmax => {
            if ins.len() < 3 {
                return Err(FdgError::MissingInput { node: op.id });
            }
            Ok(ops::linear_softmax(ins[0], ins[1], ins[2])?)
        }
        PlanOp::EwChain(prog) => compile::run_ew(prog, ins, &op.shape),
    }
}

/// Collects references to the given input values, from the arena or the
/// out-of-graph presets.
fn gather<'v>(
    inputs: &[NodeId],
    values: &'v [Option<Tensor>],
    extra: &'v [(NodeId, Tensor)],
) -> Option<Vec<&'v Tensor>> {
    inputs
        .iter()
        .map(|&i| {
            values
                .get(i)
                .and_then(Option::as_ref)
                .or_else(|| extra.iter().find(|(id, _)| *id == i).map(|(_, v)| v))
        })
        .collect()
}

/// Drops one consumer reference per input; a value whose count reaches
/// zero and is not marked `keep` goes back to the buffer pool — unless
/// the plan names it a cross-level donor, in which case its buffer is
/// stashed for the stealer op instead of round-tripping the pool.
fn release(
    inputs: &[NodeId],
    values: &mut [Option<Tensor>],
    uses: &mut [usize],
    keep: &[bool],
    donors: &HashMap<NodeId, NodeId>,
    stash: &mut HashMap<NodeId, Vec<f32>>,
) {
    for &i in inputs {
        if i >= uses.len() || uses[i] == 0 {
            continue;
        }
        uses[i] -= 1;
        if uses[i] == 0 && !keep[i] {
            if let Some(t) = values[i].take() {
                if let Some(&stealer) = donors.get(&i) {
                    stash.insert(stealer, t.into_vec());
                } else {
                    t.recycle();
                }
            }
        }
    }
}

/// Evaluates one pure (stateless) node. Called from worker threads during
/// level-parallel evaluation, so it only touches the `Sync` bindings.
fn eval_pure(bind: &Bindings<'_>, node: &OpNode, ins: &[&Tensor]) -> Result<Tensor> {
    let need = |n: usize| -> Result<()> {
        if ins.len() < n {
            Err(FdgError::MissingInput { node: node.id })
        } else {
            Ok(())
        }
    };
    Ok(match &node.kind {
        OpKind::Input { name } => bind
            .inputs
            .get(name)
            .cloned()
            .ok_or(FdgError::MissingKernel { op: format!("Input({name})") })?,
        OpKind::Param { name } => bind
            .params
            .get(name)
            .cloned()
            .ok_or(FdgError::MissingKernel { op: format!("Param({name})") })?,
        OpKind::Const => {
            bind.consts.get(&node.id).cloned().unwrap_or_else(|| Tensor::zeros(&node.shape))
        }
        OpKind::Identity => {
            need(1)?;
            ins[0].clone()
        }
        OpKind::MatMul => {
            need(2)?;
            ops::matmul(ins[0], ins[1])?
        }
        OpKind::Add => {
            need(2)?;
            ops::add(ins[0], ins[1])?
        }
        OpKind::Sub => {
            need(2)?;
            ops::sub(ins[0], ins[1])?
        }
        OpKind::Mul => {
            need(2)?;
            ops::mul(ins[0], ins[1])?
        }
        OpKind::Div => {
            need(2)?;
            ops::div(ins[0], ins[1])?
        }
        OpKind::Relu => {
            need(1)?;
            ops::relu(ins[0])
        }
        OpKind::Tanh => {
            need(1)?;
            ops::tanh(ins[0])
        }
        OpKind::Sigmoid => {
            need(1)?;
            ops::sigmoid(ins[0])
        }
        OpKind::Exp => {
            need(1)?;
            ops::exp(ins[0])
        }
        OpKind::Ln => {
            need(1)?;
            ops::ln(ins[0])
        }
        OpKind::Square => {
            need(1)?;
            ops::square(ins[0])
        }
        OpKind::Neg => {
            need(1)?;
            ops::neg(ins[0])
        }
        OpKind::Clamp { lo, hi } => {
            need(1)?;
            ops::clamp(ins[0], *lo, *hi)
        }
        OpKind::Softmax => {
            need(1)?;
            ops::softmax_rows(ins[0])?
        }
        OpKind::LogSoftmax => {
            need(1)?;
            ops::log_softmax_rows(ins[0])?
        }
        OpKind::SumAll => {
            need(1)?;
            ops::sum_all(ins[0])
        }
        OpKind::MeanAll => {
            need(1)?;
            ops::mean_all(ins[0])
        }
        OpKind::SumAxis { axis } => {
            need(1)?;
            ops::sum_axis(ins[0], *axis)?
        }
        OpKind::Concat { axis } => {
            need(1)?;
            ops::concat(ins, *axis)?
        }
        OpKind::Reshape { dims } => {
            need(1)?;
            ins[0].reshape(dims)?
        }
        // Macro ops never reach here: `run` routes them to kernels.
        macro_op => {
            return Err(FdgError::MissingKernel { op: macro_op.name().to_string() });
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::{Collective, FragmentKind};
    use crate::partition::build_fdg;
    use crate::trace::{trace_mlp, TraceCtx};
    use msrl_tensor::Backend;

    #[test]
    fn evaluates_mlp_like_tensor_lib() {
        let ctx = TraceCtx::new();
        let x = ctx.input("x", &[2, 3]);
        let out = trace_mlp(&ctx, "net", &x, &[3, 4, 2]);
        let graph = ctx.finish();

        let mut interp = Interpreter::new();
        let xv = Tensor::from_vec(vec![0.1, -0.2, 0.3, 0.5, 0.5, -0.5], &[2, 3]).unwrap();
        interp.bind_input("x", xv.clone());
        let w0 = Tensor::full(&[3, 4], 0.1);
        let b0 = Tensor::zeros(&[4]);
        let w1 = Tensor::full(&[4, 2], 0.2);
        let b1 = Tensor::full(&[2], 0.5);
        interp.bind_param("net.w0", w0.clone());
        interp.bind_param("net.b0", b0.clone());
        interp.bind_param("net.w1", w1.clone());
        interp.bind_param("net.b1", b1.clone());
        let values = interp.eval(&graph).unwrap();

        // Reference computation with the tensor library directly.
        let h = ops::tanh(&ops::add(&ops::matmul(&xv, &w0).unwrap(), &b0).unwrap());
        let expect = ops::add(&ops::matmul(&h, &w1).unwrap(), &b1).unwrap();
        let got = &values[out.id()];
        assert_eq!(got.shape(), expect.shape());
        for (a, b) in got.data().iter().zip(expect.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn missing_input_binding_is_reported() {
        let ctx = TraceCtx::new();
        let _x = ctx.input("x", &[2]);
        let graph = ctx.finish();
        let mut interp = Interpreter::new();
        assert!(matches!(interp.eval(&graph), Err(FdgError::MissingKernel { .. })));
    }

    #[test]
    fn macro_op_without_kernel_is_reported() {
        let ctx = TraceCtx::new();
        let _obs = ctx.env_reset(4, 3);
        let graph = ctx.finish();
        let mut interp = Interpreter::new();
        let err = interp.eval(&graph).unwrap_err();
        assert!(matches!(err, FdgError::MissingKernel { op } if op == "EnvReset"));
    }

    #[test]
    fn kernels_receive_inputs_and_keep_state() {
        let ctx = TraceCtx::new();
        let obs = ctx.env_reset(1, 2);
        let act = obs.relu();
        let (obs2, rew) = ctx.env_step(&act, 1, 2);
        let graph = ctx.finish();

        let mut interp = Interpreter::new();
        interp.register("EnvReset", Box::new(|node, _| Ok(Tensor::ones(&node.shape))));
        let mut step_count = 0;
        interp.register(
            "EnvStep",
            Box::new(move |node, ins| {
                // First EnvStep node (1 input) performs the step; the
                // second (2 inputs) reports rewards.
                if ins.len() == 1 {
                    step_count += 1;
                    Ok(Tensor::full(&node.shape, step_count as f32))
                } else {
                    Ok(Tensor::full(&node.shape, 0.5))
                }
            }),
        );
        let values = interp.eval(&graph).unwrap();
        assert_eq!(values[obs2.id()].data(), &[1.0, 1.0]);
        assert_eq!(values[rew.id()].data(), &[0.5]);
    }

    #[test]
    fn fragment_eval_uses_preset_entries() {
        // Split x.relu() | square().sum() at the relu output; evaluate the
        // learner-side fragment alone by presetting the entry value.
        let ctx = TraceCtx::new();
        let saved = ctx.enter_component("actor");
        let x = ctx.input("x", &[3]);
        let a = x.relu();
        ctx.annotate(FragmentKind::Action, Collective::SendRecv, &[&a]);
        ctx.exit_component(saved);
        let saved = ctx.enter_component("learner");
        let loss = a.square().sum_all();
        ctx.exit_component(saved);
        let fdg = build_fdg(ctx.finish()).unwrap();
        let learner =
            fdg.fragments.iter().find(|f| f.entries.iter().any(|i| i.node == a.id())).unwrap();

        let mut interp = Interpreter::new();
        let preset =
            HashMap::from([(a.id(), Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap())]);
        let values = interp.eval_fragment(&fdg.graph, learner, preset).unwrap();
        assert_eq!(values[&loss.id()].item().unwrap(), 14.0);
    }

    #[test]
    fn fragment_eval_without_entry_fails() {
        let ctx = TraceCtx::new();
        let saved = ctx.enter_component("actor");
        let x = ctx.input("x", &[3]);
        let a = x.relu();
        ctx.annotate(FragmentKind::Action, Collective::SendRecv, &[&a]);
        ctx.exit_component(saved);
        let saved2 = ctx.enter_component("learner");
        let _loss = a.square().sum_all();
        ctx.exit_component(saved2);
        let fdg = build_fdg(ctx.finish()).unwrap();
        let learner =
            fdg.fragments.iter().find(|f| f.entries.iter().any(|i| i.node == a.id())).unwrap();
        let mut interp = Interpreter::new();
        // The boundary node's own inputs are outside the fragment: with no
        // preset the evaluation must fail rather than silently recompute.
        let err = interp.eval_fragment(&fdg.graph, learner, HashMap::new()).unwrap_err();
        assert!(matches!(err, FdgError::MissingInput { .. } | FdgError::MissingKernel { .. }));
    }

    /// A wide graph of independent branches must produce identical
    /// results whether levels run serially or on scoped threads.
    #[test]
    fn level_parallel_matches_serial() {
        let ctx = TraceCtx::new();
        let x = ctx.input("x", &[4, 8]);
        // 6 independent unary branches off x, then a reduction of each:
        // every branch sits in the same dependency level.
        let branches = [
            x.relu().sum_all(),
            x.tanh().sum_all(),
            x.square().sum_all(),
            x.sigmoid().sum_all(),
            x.exp().sum_all(),
            x.neg().sum_all(),
        ];
        let graph = ctx.finish();

        let run = || {
            let mut interp = Interpreter::new();
            let xv: Vec<f32> = (0..32).map(|i| (i as f32 - 16.0) * 0.1).collect();
            interp.bind_input("x", Tensor::from_vec(xv, &[4, 8]).unwrap());
            interp.eval(&graph).unwrap()
        };
        let (serial, threaded) = par::with_threads(4, || {
            par::with_par_min(1, || {
                (par::with_backend(Backend::Scalar, run), par::with_backend(Backend::Threaded, run))
            })
        });
        for b in &branches {
            // sum_all combines per-chunk partials under threading, so the
            // branches agree to rounding rather than bit-for-bit.
            let (s, t) = (serial[b.id()].item().unwrap(), threaded[b.id()].item().unwrap());
            assert!((s - t).abs() <= 1e-5 * (1.0 + s.abs()), "{s} vs {t}");
        }
    }

    /// Macro kernels fire in ascending id order under the threaded
    /// backend too — they are serialisation barriers.
    #[test]
    fn macro_order_is_preserved_under_threading() {
        let ctx = TraceCtx::new();
        let obs = ctx.env_reset(1, 2);
        let a = obs.relu();
        let (obs2, _rew) = ctx.env_step(&a, 1, 2);
        let b = obs2.tanh();
        let (obs3, _rew2) = ctx.env_step(&b, 1, 2);
        let graph = ctx.finish();

        let order = std::cell::RefCell::new(Vec::new());
        let mut interp = Interpreter::new();
        interp.register("EnvReset", Box::new(|node, _| Ok(Tensor::ones(&node.shape))));
        interp.register(
            "EnvStep",
            Box::new(|node, _| {
                order.borrow_mut().push(node.id);
                Ok(Tensor::ones(&node.shape))
            }),
        );
        let res = par::with_threads(4, || {
            par::with_par_min(1, || par::with_backend(Backend::Threaded, || interp.eval(&graph)))
        });
        res.unwrap();
        let recorded = order.borrow().clone();
        assert_eq!(recorded.len(), 4, "both EnvStep pairs fire");
        assert!(recorded.windows(2).all(|w| w[0] < w[1]), "ids ascend: {recorded:?}");
        assert!(obs3.id() > obs2.id());
    }

    /// The outputs-only path returns the same answers as full evaluation
    /// and feeds dead intermediates back to the buffer pool.
    #[test]
    fn fragment_outputs_match_and_recycle() {
        let ctx = TraceCtx::new();
        let saved = ctx.enter_component("actor");
        let x = ctx.input("x", &[64]);
        let a = x.relu();
        ctx.annotate(FragmentKind::Action, Collective::SendRecv, &[&a]);
        ctx.exit_component(saved);
        let saved = ctx.enter_component("learner");
        let loss = a.square().square().sum_all();
        ctx.exit_component(saved);
        let fdg = build_fdg(ctx.finish()).unwrap();
        let learner =
            fdg.fragments.iter().find(|f| f.entries.iter().any(|i| i.node == a.id())).unwrap();

        let entry = Tensor::from_vec((0..64).map(|i| i as f32 * 0.01).collect(), &[64]).unwrap();
        let mut interp = Interpreter::new();
        let full = interp
            .eval_fragment(&fdg.graph, learner, HashMap::from([(a.id(), entry.clone())]))
            .unwrap();

        // Unfused path: intermediates are materialised, so the recycler
        // must feed them back to the pool and the second run must hit it.
        par::with_fusion(false, || {
            msrl_tensor::alloc::clear();
            let only = interp
                .eval_fragment_outputs(
                    &fdg.graph,
                    learner,
                    HashMap::from([(a.id(), entry.clone())]),
                    &[loss.id()],
                )
                .unwrap();
            assert_eq!(only.len(), 1);
            assert_eq!(only[&loss.id()], full[&loss.id()]);
            let after_first = msrl_tensor::alloc::stats();
            assert!(after_first.pooled_elems > 0, "dead intermediates must be recycled");

            // A second evaluation is served from the pool.
            let again = interp
                .eval_fragment_outputs(
                    &fdg.graph,
                    learner,
                    HashMap::from([(a.id(), entry.clone())]),
                    &[loss.id()],
                )
                .unwrap();
            assert_eq!(again[&loss.id()], full[&loss.id()]);
            let after_second = msrl_tensor::alloc::stats();
            assert!(after_second.hits > after_first.hits, "second run must reuse buffers");
        });

        // Fused path: the square→square chain runs in place in the entry
        // buffer, so steady-state evaluation allocates nothing new — the
        // pool's miss count stays flat across repeats.
        par::with_fusion(true, || {
            msrl_tensor::alloc::clear();
            let first = interp
                .eval_fragment_outputs(
                    &fdg.graph,
                    learner,
                    HashMap::from([(a.id(), entry.clone())]),
                    &[loss.id()],
                )
                .unwrap();
            assert_eq!(first[&loss.id()], full[&loss.id()]);
            let baseline = msrl_tensor::alloc::stats();
            let again = interp
                .eval_fragment_outputs(
                    &fdg.graph,
                    learner,
                    HashMap::from([(a.id(), entry)]),
                    &[loss.id()],
                )
                .unwrap();
            assert_eq!(again[&loss.id()], full[&loss.id()]);
            let after = msrl_tensor::alloc::stats();
            assert_eq!(after.misses, baseline.misses, "in-place chains must not allocate");
        });
        msrl_tensor::alloc::clear();
    }

    #[test]
    fn cross_level_steal_keeps_dead_buffers_out_of_the_pool() {
        let ctx = TraceCtx::new();
        let x = ctx.input("x", &[16, 16]);
        let w = ctx.param("w", &[16, 16]);
        let p = x.matmul(&w);
        let a = p.square().tanh();
        let b = a.sum_all();
        let y0 = x.tanh();
        let c = y0.mul(&b).tanh();
        let _ = (&p, &b);
        let graph = ctx.finish();
        let fdg = build_fdg(graph).unwrap();
        let frag = &fdg.fragments[0];
        let xv = Tensor::from_vec((0..256).map(|i| (i as f32 * 0.013).sin()).collect(), &[16, 16])
            .unwrap();
        let wv = Tensor::from_vec((0..256).map(|i| (i as f32 * 0.007).cos()).collect(), &[16, 16])
            .unwrap();
        let outputs = [c.id(), y0.id(), x.id(), w.id()];
        let run = |fusion: bool| {
            par::with_fusion(fusion, || {
                let mut interp = Interpreter::new();
                interp.bind_input("x", xv.clone());
                interp.bind_param("w", wv.clone());
                msrl_tensor::alloc::clear();
                let out = interp
                    .eval_fragment_outputs(&fdg.graph, frag, HashMap::new(), &outputs)
                    .unwrap();
                (out, msrl_tensor::alloc::stats().high_water_elems)
            })
        };
        let (plain, plain_hw) = run(false);
        let (fused, fused_hw) = run(true);
        for id in outputs {
            assert_eq!(fused[&id].data(), plain[&id].data(), "steals must not change values");
        }
        // Unfused, every dead 256-element intermediate cycles through
        // the pool. Fused, the a-chain claims p in place and the final
        // chain claims a's buffer across the level boundary, so only
        // scalar scratch ever reaches the free list.
        assert!(plain_hw >= 256, "unfused run must pool dead intermediates, got {plain_hw}");
        assert!(fused_hw < 256, "steals must keep dead buffers out of the pool, got {fused_hw}");
        msrl_tensor::alloc::clear();
    }

    #[test]
    fn donor_chains_carry_one_buffer_through_successive_stealers() {
        // p -> a (in place) -> c (cross-level) -> e (cross-level): the
        // same physical buffer serves three chain outputs, so the pool
        // never sees a single 256-element intermediate even though the
        // unfused schedule cycles three of them through it.
        let ctx = TraceCtx::new();
        let x = ctx.input("x", &[16, 16]);
        let w = ctx.param("w", &[16, 16]);
        let p = x.matmul(&w);
        let a = p.square().tanh();
        let b = a.sum_all();
        let y0 = x.tanh();
        let c = y0.mul(&b).tanh();
        let d = c.sum_all();
        let y1 = x.relu();
        let e = y1.mul(&d).tanh();
        let _ = (&p, &b, &d);
        let graph = ctx.finish();
        let fdg = build_fdg(graph).unwrap();
        let frag = &fdg.fragments[0];
        let xv = Tensor::from_vec((0..256).map(|i| (i as f32 * 0.013).sin()).collect(), &[16, 16])
            .unwrap();
        let wv = Tensor::from_vec((0..256).map(|i| (i as f32 * 0.007).cos()).collect(), &[16, 16])
            .unwrap();
        let outputs = [e.id(), y0.id(), y1.id(), x.id(), w.id()];
        let run = |fusion: bool| {
            par::with_fusion(fusion, || {
                let mut interp = Interpreter::new();
                interp.bind_input("x", xv.clone());
                interp.bind_param("w", wv.clone());
                msrl_tensor::alloc::clear();
                let out = interp
                    .eval_fragment_outputs(&fdg.graph, frag, HashMap::new(), &outputs)
                    .unwrap();
                (out, msrl_tensor::alloc::stats().high_water_elems)
            })
        };
        let (plain, plain_hw) = run(false);
        let (fused, fused_hw) = run(true);
        for id in outputs {
            assert_eq!(
                fused[&id].data(),
                plain[&id].data(),
                "chained steals must not change values"
            );
        }
        assert!(plain_hw >= 256, "unfused run must pool dead intermediates, got {plain_hw}");
        assert!(
            fused_hw < 256,
            "a chained steal must keep every hop out of the pool, got {fused_hw}"
        );
        msrl_tensor::alloc::clear();
    }

    #[test]
    fn tier_promotes_hot_plans_once_and_repacks_on_rebind() {
        let ctx = TraceCtx::new();
        let x = ctx.input("x", &[4, 64]);
        let w = ctx.param("w", &[64, 64]);
        let y = x.matmul(&w);
        let graph = ctx.finish();
        let fdg = build_fdg(graph).unwrap();
        let frag = &fdg.fragments[0];
        let xv = Tensor::from_vec((0..256).map(|i| (i as f32 * 0.011).sin()).collect(), &[4, 64])
            .unwrap();
        let wv = Tensor::from_vec((0..4096).map(|i| (i as f32 * 0.003).cos()).collect(), &[64, 64])
            .unwrap();
        let reference = par::with_tier(false, || {
            let mut plain = Interpreter::new();
            plain.bind_input("x", xv.clone());
            plain.bind_param("w", wv.clone());
            plain.eval_fragment_outputs(&fdg.graph, frag, HashMap::new(), &[y.id()]).unwrap()
        });

        let mut interp = Interpreter::new();
        interp.bind_input("x", xv.clone());
        interp.bind_param("w", wv.clone());
        let tier_state = |interp: &Interpreter| {
            let entry = interp.plans.values().next().expect("one cached plan");
            (entry.execs, entry.plan.tier.as_ref().map(|t| (t.packed.len(), t.epoch)))
        };
        par::with_tier(true, || {
            for i in 1..=2 {
                let out = interp
                    .eval_fragment_outputs(&fdg.graph, frag, HashMap::new(), &[y.id()])
                    .unwrap();
                assert_eq!(out[&y.id()].data(), reference[&y.id()].data());
                assert_eq!(tier_state(&interp), (i, None), "below the threshold: no packing");
            }
            // The third execution crosses the default threshold: the
            // weight packs once and the tiered plan swaps into the cache.
            let out =
                interp.eval_fragment_outputs(&fdg.graph, frag, HashMap::new(), &[y.id()]).unwrap();
            assert_eq!(out[&y.id()].data(), reference[&y.id()].data(), "tiered must be bitwise");
            let (execs, tier) = tier_state(&interp);
            assert_eq!(execs, 3);
            let (packed, epoch) = tier.expect("hot plan promoted");
            assert_eq!(packed, 1, "exactly the weight operand packs");
            // Steady state: further hot evaluations never repack.
            for _ in 0..5 {
                let out = interp
                    .eval_fragment_outputs(&fdg.graph, frag, HashMap::new(), &[y.id()])
                    .unwrap();
                assert_eq!(out[&y.id()].data(), reference[&y.id()].data());
                assert_eq!(tier_state(&interp).1, Some((1, epoch)), "steady state repacked");
            }
            // Rebinding a parameter bumps the epoch: the next hot
            // evaluation repacks exactly once against the new weights.
            let wv2 = Tensor::full(&[64, 64], 0.02);
            interp.bind_param("w", wv2.clone());
            let reference2 = par::with_tier(false, || {
                let mut plain = Interpreter::new();
                plain.bind_input("x", xv.clone());
                plain.bind_param("w", wv2.clone());
                plain.eval_fragment_outputs(&fdg.graph, frag, HashMap::new(), &[y.id()]).unwrap()
            });
            let out =
                interp.eval_fragment_outputs(&fdg.graph, frag, HashMap::new(), &[y.id()]).unwrap();
            assert_eq!(out[&y.id()].data(), reference2[&y.id()].data(), "repack must be bitwise");
            let (_, tier) = tier_state(&interp);
            let (packed2, epoch2) = tier.expect("still promoted");
            assert_eq!(packed2, 1);
            assert_ne!(epoch2, epoch, "rebind must bump the pack epoch");
            // Tier off: the packed data is ignored and results still match.
            let off = par::with_tier(false, || {
                interp.eval_fragment_outputs(&fdg.graph, frag, HashMap::new(), &[y.id()]).unwrap()
            });
            assert_eq!(off[&y.id()].data(), reference2[&y.id()].data());
        });
    }

    #[test]
    fn time_cold_plans_skip_promotion_until_the_floor_is_met() {
        let ctx = TraceCtx::new();
        let x = ctx.input("x", &[4, 64]);
        let w = ctx.param("w", &[64, 64]);
        let y = x.matmul(&w);
        let graph = ctx.finish();
        let fdg = build_fdg(graph).unwrap();
        let frag = &fdg.fragments[0];
        let xv = Tensor::from_vec((0..256).map(|i| (i as f32 * 0.013).sin()).collect(), &[4, 64])
            .unwrap();
        let wv = Tensor::from_vec((0..4096).map(|i| (i as f32 * 0.007).cos()).collect(), &[64, 64])
            .unwrap();
        let run = |interp: &mut Interpreter| {
            interp.eval_fragment_outputs(&fdg.graph, frag, HashMap::new(), &[y.id()]).unwrap()
        };
        let tier_epoch = |interp: &Interpreter| {
            let entry = interp.plans.values().next().expect("one cached plan");
            entry.plan.tier.as_ref().map(|t| t.packed.len())
        };
        par::with_tier(true, || {
            // An unreachable floor: count-hot evaluations keep skipping
            // promotion and the skip is accounted.
            with_tier_min_ns(u64::MAX - 1, || {
                let mut interp = Interpreter::new();
                interp.bind_input("x", xv.clone());
                interp.bind_param("w", wv.clone());
                let skipped = msrl_telemetry::static_counter!("interp.tier.skipped_cold");
                let before = skipped.get();
                for _ in 0..6 {
                    run(&mut interp);
                }
                assert_eq!(tier_epoch(&interp), None, "time-cold plan must stay tier-0");
                assert!(
                    skipped.get() >= before + 3,
                    "every count-hot, time-cold evaluation is accounted"
                );
            });
            // A 1 ns floor: anything real accumulates past it, so the
            // plan promotes exactly as with the floor disabled.
            with_tier_min_ns(1, || {
                let mut interp = Interpreter::new();
                interp.bind_input("x", xv.clone());
                interp.bind_param("w", wv.clone());
                for _ in 0..3 {
                    run(&mut interp);
                }
                assert_eq!(tier_epoch(&interp), Some(1), "time-hot plan promotes");
                let hot_ns = interp.plans.values().next().unwrap().eval_ns;
                assert!(hot_ns > 0, "eval time must accumulate while the floor is armed");
            });
        });
    }
}
