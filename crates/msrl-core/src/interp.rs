//! The operator interpreter: msrl-rs's stand-in for a DL engine backend.
//!
//! Workers in the original system generate executable code for their
//! fragments and hand it to MindSpore, which compiles the operator graph
//! for the device (§5.2). Here, [`Interpreter::eval`] plays the engine:
//! compute nodes evaluate through `msrl-tensor` operators, and stateful RL
//! macro ops (environment stepping, replay buffers, learning) dispatch to
//! *kernels* registered by the runtime — the analogue of the generated
//! `Fragment.run()` code binding `MSRL.env_step()` to component objects.

use std::collections::HashMap;

use msrl_tensor::{ops, Tensor};

use crate::fragment::Fragment;
use crate::graph::{DataflowGraph, NodeId, OpKind, OpNode};
use crate::{FdgError, Result};

/// A stateful kernel for macro ops. Receives the node being evaluated and
/// its input values; returns the node's output.
pub type Kernel<'a> = Box<dyn FnMut(&OpNode, &[Tensor]) -> Result<Tensor> + 'a>;

/// Evaluates dataflow (sub)graphs.
#[derive(Default)]
pub struct Interpreter<'a> {
    kernels: HashMap<&'static str, Kernel<'a>>,
    /// Values for `Input` nodes, by name.
    pub inputs: HashMap<String, Tensor>,
    /// Values for `Param` nodes, by name.
    pub params: HashMap<String, Tensor>,
    /// Values for `Const` nodes, by id.
    pub consts: HashMap<NodeId, Tensor>,
}

impl<'a> Interpreter<'a> {
    /// Creates an interpreter with no kernels or bindings.
    pub fn new() -> Self {
        Interpreter::default()
    }

    /// Registers the kernel for a macro op (keyed by [`OpKind::name`]).
    pub fn register(&mut self, op: &'static str, kernel: Kernel<'a>) {
        self.kernels.insert(op, kernel);
    }

    /// Binds an input by name.
    pub fn bind_input(&mut self, name: &str, value: Tensor) {
        self.inputs.insert(name.to_string(), value);
    }

    /// Binds a parameter by name.
    pub fn bind_param(&mut self, name: &str, value: Tensor) {
        self.params.insert(name.to_string(), value);
    }

    /// Evaluates the whole graph; returns every node's value.
    ///
    /// # Errors
    ///
    /// Returns an error on missing bindings/kernels or tensor failures.
    pub fn eval(&mut self, graph: &DataflowGraph) -> Result<Vec<Tensor>> {
        let ids: Vec<NodeId> = (0..graph.len()).collect();
        let values = self.eval_nodes(graph, &ids, HashMap::new())?;
        Ok(ids.into_iter().map(|i| values[&i].clone()).collect())
    }

    /// Evaluates one fragment. `preset` supplies values for entry
    /// boundary nodes (data received over the fragment's entry
    /// interface); returns the values of all evaluated nodes, from which
    /// exit payloads can be read.
    ///
    /// # Errors
    ///
    /// Returns an error on missing bindings/kernels or tensor failures.
    pub fn eval_fragment(
        &mut self,
        graph: &DataflowGraph,
        fragment: &Fragment,
        preset: HashMap<NodeId, Tensor>,
    ) -> Result<HashMap<NodeId, Tensor>> {
        self.eval_nodes(graph, &fragment.all_nodes(), preset)
    }

    fn eval_nodes(
        &mut self,
        graph: &DataflowGraph,
        ids: &[NodeId],
        preset: HashMap<NodeId, Tensor>,
    ) -> Result<HashMap<NodeId, Tensor>> {
        let mut values: HashMap<NodeId, Tensor> = preset;
        // Tracing appends topologically, so ascending id order works.
        let mut sorted = ids.to_vec();
        sorted.sort_unstable();
        for &id in &sorted {
            if values.contains_key(&id) {
                continue; // preset (entry interface value)
            }
            let node = graph.node(id)?;
            let mut ins = Vec::with_capacity(node.inputs.len());
            for &i in &node.inputs {
                ins.push(values.get(&i).ok_or(FdgError::MissingInput { node: id })?.clone());
            }
            let v = self.eval_node(node, &ins)?;
            values.insert(id, v);
        }
        Ok(values)
    }

    fn eval_node(&mut self, node: &OpNode, ins: &[Tensor]) -> Result<Tensor> {
        let need = |n: usize| -> Result<()> {
            if ins.len() < n {
                Err(FdgError::MissingInput { node: node.id })
            } else {
                Ok(())
            }
        };
        Ok(match &node.kind {
            OpKind::Input { name } => self
                .inputs
                .get(name)
                .cloned()
                .ok_or(FdgError::MissingKernel { op: format!("Input({name})") })?,
            OpKind::Param { name } => self
                .params
                .get(name)
                .cloned()
                .ok_or(FdgError::MissingKernel { op: format!("Param({name})") })?,
            OpKind::Const => self
                .consts
                .get(&node.id)
                .cloned()
                .unwrap_or_else(|| Tensor::zeros(&node.shape)),
            OpKind::Identity => {
                need(1)?;
                ins[0].clone()
            }
            OpKind::MatMul => {
                need(2)?;
                ops::matmul(&ins[0], &ins[1])?
            }
            OpKind::Add => {
                need(2)?;
                ops::add(&ins[0], &ins[1])?
            }
            OpKind::Sub => {
                need(2)?;
                ops::sub(&ins[0], &ins[1])?
            }
            OpKind::Mul => {
                need(2)?;
                ops::mul(&ins[0], &ins[1])?
            }
            OpKind::Div => {
                need(2)?;
                ops::div(&ins[0], &ins[1])?
            }
            OpKind::Relu => {
                need(1)?;
                ops::relu(&ins[0])
            }
            OpKind::Tanh => {
                need(1)?;
                ops::tanh(&ins[0])
            }
            OpKind::Sigmoid => {
                need(1)?;
                ops::sigmoid(&ins[0])
            }
            OpKind::Exp => {
                need(1)?;
                ops::exp(&ins[0])
            }
            OpKind::Ln => {
                need(1)?;
                ops::ln(&ins[0])
            }
            OpKind::Square => {
                need(1)?;
                ops::square(&ins[0])
            }
            OpKind::Neg => {
                need(1)?;
                ops::neg(&ins[0])
            }
            OpKind::Clamp { lo, hi } => {
                need(1)?;
                ops::clamp(&ins[0], *lo, *hi)
            }
            OpKind::Softmax => {
                need(1)?;
                ops::softmax_rows(&ins[0])?
            }
            OpKind::LogSoftmax => {
                need(1)?;
                ops::log_softmax_rows(&ins[0])?
            }
            OpKind::SumAll => {
                need(1)?;
                ops::sum_all(&ins[0])
            }
            OpKind::MeanAll => {
                need(1)?;
                ops::mean_all(&ins[0])
            }
            OpKind::SumAxis { axis } => {
                need(1)?;
                ops::sum_axis(&ins[0], *axis)?
            }
            OpKind::Concat { axis } => {
                need(1)?;
                let refs: Vec<&Tensor> = ins.iter().collect();
                ops::concat(&refs, *axis)?
            }
            OpKind::Reshape { dims } => {
                need(1)?;
                ins[0].reshape(dims)?
            }
            // Macro ops dispatch to registered kernels.
            macro_op => {
                let name = macro_op.name();
                let kernel = self
                    .kernels
                    .get_mut(name)
                    .ok_or_else(|| FdgError::MissingKernel { op: name.to_string() })?;
                kernel(node, ins)?
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::{Collective, FragmentKind};
    use crate::partition::build_fdg;
    use crate::trace::{trace_mlp, TraceCtx};

    #[test]
    fn evaluates_mlp_like_tensor_lib() {
        let ctx = TraceCtx::new();
        let x = ctx.input("x", &[2, 3]);
        let out = trace_mlp(&ctx, "net", &x, &[3, 4, 2]);
        let graph = ctx.finish();

        let mut interp = Interpreter::new();
        let xv = Tensor::from_vec(vec![0.1, -0.2, 0.3, 0.5, 0.5, -0.5], &[2, 3]).unwrap();
        interp.bind_input("x", xv.clone());
        let w0 = Tensor::full(&[3, 4], 0.1);
        let b0 = Tensor::zeros(&[4]);
        let w1 = Tensor::full(&[4, 2], 0.2);
        let b1 = Tensor::full(&[2], 0.5);
        interp.bind_param("net.w0", w0.clone());
        interp.bind_param("net.b0", b0.clone());
        interp.bind_param("net.w1", w1.clone());
        interp.bind_param("net.b1", b1.clone());
        let values = interp.eval(&graph).unwrap();

        // Reference computation with the tensor library directly.
        let h = ops::tanh(&ops::add(&ops::matmul(&xv, &w0).unwrap(), &b0).unwrap());
        let expect = ops::add(&ops::matmul(&h, &w1).unwrap(), &b1).unwrap();
        let got = &values[out.id()];
        assert_eq!(got.shape(), expect.shape());
        for (a, b) in got.data().iter().zip(expect.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn missing_input_binding_is_reported() {
        let ctx = TraceCtx::new();
        let _x = ctx.input("x", &[2]);
        let graph = ctx.finish();
        let mut interp = Interpreter::new();
        assert!(matches!(interp.eval(&graph), Err(FdgError::MissingKernel { .. })));
    }

    #[test]
    fn macro_op_without_kernel_is_reported() {
        let ctx = TraceCtx::new();
        let _obs = ctx.env_reset(4, 3);
        let graph = ctx.finish();
        let mut interp = Interpreter::new();
        let err = interp.eval(&graph).unwrap_err();
        assert!(matches!(err, FdgError::MissingKernel { op } if op == "EnvReset"));
    }

    #[test]
    fn kernels_receive_inputs_and_keep_state() {
        let ctx = TraceCtx::new();
        let obs = ctx.env_reset(1, 2);
        let act = obs.relu();
        let (obs2, rew) = ctx.env_step(&act, 1, 2);
        let graph = ctx.finish();

        let mut interp = Interpreter::new();
        interp.register("EnvReset", Box::new(|node, _| Ok(Tensor::ones(&node.shape))));
        let mut step_count = 0;
        interp.register(
            "EnvStep",
            Box::new(move |node, ins| {
                // First EnvStep node (1 input) performs the step; the
                // second (2 inputs) reports rewards.
                if ins.len() == 1 {
                    step_count += 1;
                    Ok(Tensor::full(&node.shape, step_count as f32))
                } else {
                    Ok(Tensor::full(&node.shape, 0.5))
                }
            }),
        );
        let values = interp.eval(&graph).unwrap();
        assert_eq!(values[obs2.id()].data(), &[1.0, 1.0]);
        assert_eq!(values[rew.id()].data(), &[0.5]);
    }

    #[test]
    fn fragment_eval_uses_preset_entries() {
        // Split x.relu() | square().sum() at the relu output; evaluate the
        // learner-side fragment alone by presetting the entry value.
        let ctx = TraceCtx::new();
        let saved = ctx.enter_component("actor");
        let x = ctx.input("x", &[3]);
        let a = x.relu();
        ctx.annotate(FragmentKind::Action, Collective::SendRecv, &[&a]);
        ctx.exit_component(saved);
        let saved = ctx.enter_component("learner");
        let loss = a.square().sum_all();
        ctx.exit_component(saved);
        let fdg = build_fdg(ctx.finish()).unwrap();
        let learner = fdg
            .fragments
            .iter()
            .find(|f| f.entries.iter().any(|i| i.node == a.id()))
            .unwrap();

        let mut interp = Interpreter::new();
        let preset =
            HashMap::from([(a.id(), Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap())]);
        let values = interp.eval_fragment(&fdg.graph, learner, preset).unwrap();
        assert_eq!(values[&loss.id()].item().unwrap(), 14.0);
    }

    #[test]
    fn fragment_eval_without_entry_fails() {
        let ctx = TraceCtx::new();
        let saved = ctx.enter_component("actor");
        let x = ctx.input("x", &[3]);
        let a = x.relu();
        ctx.annotate(FragmentKind::Action, Collective::SendRecv, &[&a]);
        ctx.exit_component(saved);
        let saved2 = ctx.enter_component("learner");
        let _loss = a.square().sum_all();
        ctx.exit_component(saved2);
        let fdg = build_fdg(ctx.finish()).unwrap();
        let learner = fdg
            .fragments
            .iter()
            .find(|f| f.entries.iter().any(|i| i.node == a.id()))
            .unwrap();
        let mut interp = Interpreter::new();
        // The boundary node's own inputs are outside the fragment: with no
        // preset the evaluation must fail rather than silently recompute.
        let err = interp.eval_fragment(&fdg.graph, learner, HashMap::new()).unwrap_err();
        assert!(matches!(err, FdgError::MissingInput { .. } | FdgError::MissingKernel { .. }));
    }
}
