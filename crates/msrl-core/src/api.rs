//! The component API (§3 of the paper).
//!
//! Users express an RL algorithm through familiar concepts: an *agent*
//! consists of *actors* (which collect data from the environment) and
//! *learners* (which manage policy training); a *trainer* provides the
//! training-loop logic. Implementations make **no assumptions about
//! execution** — they consume and produce tensors, and all distribution
//! concerns (replication, placement, synchronisation) are decided later
//! from the deployment configuration.
//!
//! Everything here is expressed in tensors only, so the same actor code
//! runs unmodified whether MSRL places it on a CPU worker fragment, fuses
//! it with the environment (DP-B), or replicates it across GPUs (DP-A).

use msrl_tensor::Tensor;

use crate::Result;

/// What an actor produces for a batch of observations.
#[derive(Debug, Clone)]
pub struct ActOutput {
    /// Actions, one row (or index) per observation. Discrete actions are
    /// encoded as `[batch]` index values; continuous as `[batch, dim]`.
    pub actions: Tensor,
    /// Behaviour log-probabilities, `[batch]` (needed by PPO's ratio).
    pub log_probs: Tensor,
    /// Value estimates, `[batch]`, when the actor carries a critic head.
    pub values: Option<Tensor>,
}

/// A batch of transitions exchanged between actors, replay buffers and
/// learners — the payload of the paper's
/// `MSRL.replay_buffer_insert`/`_sample` interaction API.
#[derive(Debug, Clone, Default)]
pub struct SampleBatch {
    /// Observations, `[n, obs_dim]`.
    pub obs: Tensor,
    /// Actions (`[n]` discrete indices or `[n, act_dim]` continuous).
    pub actions: Tensor,
    /// Rewards, `[n]`.
    pub rewards: Tensor,
    /// Next observations, `[n, obs_dim]`.
    pub next_obs: Tensor,
    /// Terminal flags.
    pub dones: Vec<bool>,
    /// Behaviour log-probabilities, `[n]`.
    pub log_probs: Tensor,
    /// Value estimates at `obs`, `[n]` (empty when the algorithm does not
    /// use a critic).
    pub values: Tensor,
    /// Length of each contiguous per-environment time segment in the
    /// batch (rows are env-major: env 0's steps, then env 1's, …).
    /// `0` means unknown/unsegmented; learners that recompute advantages
    /// (PPO's GAE) need it to respect trajectory boundaries.
    pub segment_len: usize,
}

impl SampleBatch {
    /// Number of transitions.
    pub fn len(&self) -> usize {
        self.dones.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.dones.is_empty()
    }

    /// Concatenates batches (row-wise) — how a single learner gathers the
    /// trajectories of many actors under DP-A/DP-B.
    ///
    /// # Errors
    ///
    /// Returns an error when widths disagree.
    pub fn concat(batches: &[SampleBatch]) -> Result<SampleBatch> {
        use msrl_tensor::ops::concat;
        let non_empty: Vec<&SampleBatch> = batches.iter().filter(|b| !b.is_empty()).collect();
        let Some(first) = non_empty.first() else {
            return Ok(SampleBatch::default());
        };
        let _ = first;
        let field = |f: fn(&SampleBatch) -> &Tensor| -> Result<Tensor> {
            let parts: Vec<&Tensor> = non_empty.iter().map(|b| f(b)).collect();
            Ok(concat(&parts, 0)?)
        };
        // Segment structure survives concat only when all parts agree.
        let seg = non_empty[0].segment_len;
        let segment_len = if non_empty.iter().all(|b| b.segment_len == seg) { seg } else { 0 };
        Ok(SampleBatch {
            obs: field(|b| &b.obs)?,
            actions: field(|b| &b.actions)?,
            rewards: field(|b| &b.rewards)?,
            next_obs: field(|b| &b.next_obs)?,
            dones: non_empty.iter().flat_map(|b| b.dones.iter().copied()).collect(),
            log_probs: field(|b| &b.log_probs)?,
            values: field(|b| &b.values)?,
            segment_len,
        })
    }

    /// Splits a batch into `n` near-equal row chunks — how DP-C shards
    /// training data across learners.
    pub fn split(&self, n: usize) -> Vec<SampleBatch> {
        let total = self.len();
        let n = n.max(1);
        let mut out = Vec::with_capacity(n);
        let mut start = 0;
        for i in 0..n {
            let remaining = total - start;
            let take = remaining / (n - i);
            out.push(self.slice(start, start + take));
            start += take;
        }
        out
    }

    /// Copies rows `[start, end)` into a new batch.
    pub fn slice(&self, start: usize, end: usize) -> SampleBatch {
        let rows = |t: &Tensor| -> Tensor {
            if t.is_empty() || t.rank() == 0 {
                return t.clone();
            }
            let width: usize = t.shape()[1..].iter().product::<usize>().max(1);
            let data = t.data()[start * width..end * width].to_vec();
            let mut dims = t.shape().to_vec();
            dims[0] = end - start;
            Tensor::from_vec(data, &dims).expect("row slice preserves width")
        };
        // A row slice respects segmentation only when cut on segment
        // boundaries; otherwise the result is unsegmented.
        let segment_len = if self.segment_len > 0
            && start.is_multiple_of(self.segment_len)
            && end.is_multiple_of(self.segment_len)
        {
            self.segment_len
        } else {
            0
        };
        SampleBatch {
            obs: rows(&self.obs),
            actions: rows(&self.actions),
            rewards: rows(&self.rewards),
            next_obs: rows(&self.next_obs),
            dones: self.dones[start..end].to_vec(),
            log_probs: rows(&self.log_probs),
            values: rows(&self.values),
            segment_len,
        }
    }
}

/// An actor: interacts with environments using the current policy
/// (`Actor.act()` in the paper's API).
pub trait Actor: Send {
    /// Computes actions (and behaviour statistics) for a batch of
    /// observations, `[batch, obs_dim]`.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed observations.
    fn act(&mut self, obs: &Tensor) -> Result<ActOutput>;

    /// Serialises the actor's policy weights (for weight-sync exits).
    fn policy_params(&self) -> Vec<f32>;

    /// Overwrites the actor's policy weights (for weight-sync entries).
    ///
    /// # Errors
    ///
    /// Returns an error when the parameter count mismatches.
    fn set_policy_params(&mut self, flat: &[f32]) -> Result<()>;
}

/// A learner: trains the policy from sampled experience
/// (`Learner.learn()` in the paper's API).
pub trait Learner: Send {
    /// Runs one update on a batch; returns the scalar loss.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed batches.
    fn learn(&mut self, batch: &SampleBatch) -> Result<f32>;

    /// Serialises the learner's policy weights.
    fn policy_params(&self) -> Vec<f32>;

    /// Overwrites the learner's policy weights.
    ///
    /// # Errors
    ///
    /// Returns an error when the parameter count mismatches.
    fn set_policy_params(&mut self, flat: &[f32]) -> Result<()>;

    /// Computes gradients for a batch *without* applying them, returning
    /// the flattened gradient (for DP-C gradient AllReduce). The default
    /// falls back to `learn` semantics for algorithms that fuse the two.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed batches.
    fn grads(&mut self, batch: &SampleBatch) -> Result<Vec<f32>> {
        let _ = self.learn(batch)?;
        Ok(Vec::new())
    }

    /// Applies an externally-aggregated flattened gradient.
    ///
    /// # Errors
    ///
    /// Returns an error when the gradient length mismatches.
    fn apply_grads(&mut self, flat: &[f32]) -> Result<()> {
        let _ = flat;
        Ok(())
    }
}

/// An agent couples one actor with one learner (the paper's `Agent`
/// component, Alg. 1 lines 1–5).
pub struct Agent {
    /// The data-collection half.
    pub actor: Box<dyn Actor>,
    /// The training half.
    pub learner: Box<dyn Learner>,
}

impl Agent {
    /// Delegates to the actor (`MSRL.agent_act`).
    ///
    /// # Errors
    ///
    /// Propagates actor errors.
    pub fn act(&mut self, obs: &Tensor) -> Result<ActOutput> {
        self.actor.act(obs)
    }

    /// Delegates to the learner (`MSRL.agent_learn`).
    ///
    /// # Errors
    ///
    /// Propagates learner errors.
    pub fn learn(&mut self, batch: &SampleBatch) -> Result<f32> {
        self.learner.learn(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(n: usize, base: f32) -> SampleBatch {
        SampleBatch {
            obs: Tensor::full(&[n, 3], base),
            actions: Tensor::full(&[n], base),
            rewards: Tensor::full(&[n], base),
            next_obs: Tensor::full(&[n, 3], base),
            dones: vec![false; n],
            log_probs: Tensor::full(&[n], base),
            values: Tensor::full(&[n], base),
            segment_len: 0,
        }
    }

    #[test]
    fn concat_joins_rows() {
        let joined = SampleBatch::concat(&[batch(2, 1.0), batch(3, 2.0)]).unwrap();
        assert_eq!(joined.len(), 5);
        assert_eq!(joined.obs.shape(), &[5, 3]);
        assert_eq!(joined.rewards.data()[0], 1.0);
        assert_eq!(joined.rewards.data()[4], 2.0);
    }

    #[test]
    fn concat_of_empty_is_empty() {
        let joined = SampleBatch::concat(&[]).unwrap();
        assert!(joined.is_empty());
        let joined = SampleBatch::concat(&[SampleBatch::default(), batch(2, 1.0)]).unwrap();
        assert_eq!(joined.len(), 2);
    }

    #[test]
    fn split_covers_all_rows() {
        let b = batch(10, 1.0);
        let parts = b.split(3);
        assert_eq!(parts.len(), 3);
        let total: usize = parts.iter().map(SampleBatch::len).sum();
        assert_eq!(total, 10);
        // Near-equal: sizes differ by at most one.
        let sizes: Vec<usize> = parts.iter().map(SampleBatch::len).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1, "{sizes:?}");
    }

    #[test]
    fn split_then_concat_roundtrip() {
        let b = batch(7, 3.0);
        let parts = b.split(2);
        let back = SampleBatch::concat(&parts).unwrap();
        assert_eq!(back.obs, b.obs);
        assert_eq!(back.dones, b.dones);
    }

    #[test]
    fn slice_copies_rows() {
        let mut b = batch(4, 0.0);
        b.rewards = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).unwrap();
        let s = b.slice(1, 3);
        assert_eq!(s.len(), 2);
        assert_eq!(s.rewards.data(), &[2.0, 3.0]);
    }
}
