//! # msrl-core
//!
//! The core abstraction of the msrl-rs reproduction of *"MSRL: Distributed
//! Reinforcement Learning with Dataflow Fragments"* (USENIX ATC 2023): the
//! **fragmented dataflow graph (FDG)**.
//!
//! MSRL decouples an RL algorithm's *specification* from its *execution*.
//! The pipeline this crate implements mirrors §3–§5 of the paper:
//!
//! 1. **Specification** ([`api`]) — users implement agents, actors,
//!    learners and trainers against familiar component traits, and
//!    interact through an interaction API (replay-buffer insert/sample,
//!    `env_step`, `agent_learn`, …). Nothing in the specification names a
//!    device or a worker.
//! 2. **Tracing** ([`trace`], [`graph`]) — the training-loop body is
//!    recorded as a [`graph::DataflowGraph`] of operator and
//!    RL-macro nodes. The original system obtains this graph by statically
//!    analysing Python source; tracing produces the identical artifact
//!    (a dataflow graph with labelled data nodes) without a Python
//!    frontend.
//! 3. **Partition annotations** ([`annotate`]) — explicit calls that
//!    reproduce the `#@MSRL.fragment(type=…, ops=[…], data=[…])` comments
//!    of the paper's Alg. 1, marking *common nodes* and the collective
//!    used when computation is split at them.
//! 4. **FDG generation** ([`partition`]) — the paper's Algorithm 2: split
//!    the dataflow graph at the common nodes into [`fragment::Fragment`]s,
//!    duplicate common nodes at the boundaries, and synthesise entry/exit
//!    interfaces bound to the annotated collectives.
//! 5. **Fusion** ([`fusion`]) — co-located fragment replicas are fused by
//!    batching their tensors along a leading replica axis (§5.2), so one
//!    batched operator replaces N kernel launches.
//! 6. **Execution** ([`interp`], [`cost`]) — fragments execute either for
//!    real (the operator interpreter evaluates compute nodes with
//!    `msrl-tensor`; stateful RL macro ops dispatch to registered
//!    kernels), or analytically (per-node flop/byte costs feed the
//!    discrete-event cluster simulator in `msrl-sim`).

#![warn(missing_docs)]

pub mod annotate;
pub mod api;
pub mod compile;
pub mod config;
pub mod cost;
pub mod fragment;
pub mod fusion;
pub mod graph;
pub mod interp;
pub mod partition;
pub mod trace;

pub use annotate::{Collective, FragmentKind, PartitionAnnotation};
pub use compile::{CompiledPlan, PlanStats};
pub use fragment::{Fragment, FragmentId, Interface};
pub use graph::{DataflowGraph, DeviceReq, NodeId, OpKind, OpNode};
pub use partition::{build_fdg, Fdg};
pub use trace::{TraceCtx, TracedVar};

/// Errors from FDG construction and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum FdgError {
    /// A node id referenced by an edge or annotation does not exist.
    UnknownNode {
        /// The offending id.
        id: usize,
    },
    /// An annotation names no data nodes.
    EmptyAnnotation,
    /// The graph is not a DAG (tracing should make this impossible; it
    /// guards hand-built graphs).
    CyclicGraph,
    /// Interpretation reached a node whose inputs were unavailable.
    MissingInput {
        /// Node whose evaluation failed.
        node: usize,
    },
    /// A stateful macro op had no registered kernel.
    MissingKernel {
        /// The op's display name.
        op: String,
    },
    /// A tensor-level error surfaced during interpretation.
    Tensor(msrl_tensor::TensorError),
    /// Fusion was asked for an invalid replica count.
    InvalidFusion {
        /// The requested replica count.
        replicas: usize,
    },
}

impl std::fmt::Display for FdgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FdgError::UnknownNode { id } => write!(f, "unknown node id {id}"),
            FdgError::EmptyAnnotation => write!(f, "partition annotation with no data nodes"),
            FdgError::CyclicGraph => write!(f, "dataflow graph contains a cycle"),
            FdgError::MissingInput { node } => {
                write!(f, "node {node} evaluated before its inputs")
            }
            FdgError::MissingKernel { op } => write!(f, "no kernel registered for op {op}"),
            FdgError::Tensor(e) => write!(f, "tensor error: {e}"),
            FdgError::InvalidFusion { replicas } => {
                write!(f, "cannot fuse {replicas} replicas")
            }
        }
    }
}

impl std::error::Error for FdgError {}

impl From<msrl_tensor::TensorError> for FdgError {
    fn from(e: msrl_tensor::TensorError) -> Self {
        FdgError::Tensor(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, FdgError>;
