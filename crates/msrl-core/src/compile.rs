//! Graph compiler: cached execution plans, operator fusion, and
//! liveness-planned buffers.
//!
//! The original system compiles each fragment's operator graph once with
//! the DL engine and then replays the compiled artefact every iteration
//! (§5.2). This module is that compilation step for msrl-rs:
//! [`compile`] turns one evaluation request — a graph, the node set to
//! evaluate, the preset (entry) ids, and the requested outputs — into a
//! [`CompiledPlan`] that the interpreter caches per
//! [`DataflowGraph::stamp`] and replays with zero per-call planning.
//!
//! A plan holds the macro-op barrier schedule, the pure stretches
//! pre-grouped into dependency levels, consumer refcounts for buffer
//! recycling, and the results of the optimization passes:
//!
//! 1. **Common-subexpression elimination** — pure nodes with identical
//!    `(kind, resolved inputs)` evaluate once; duplicates either
//!    disappear or degrade to `Identity` when their value is retained.
//! 2. **Linear fusion** — `MatMul → Add(bias) → activation` (and the
//!    bare `MatMul → Add(bias)`) patterns lower to the fused
//!    [`msrl_tensor::ops::linear_act`] kernel: one output buffer and one
//!    memory pass instead of three. The fused kernel reuses the exact
//!    matmul inner loops, so results are bit-identical. The policy
//!    head's `MatMul → Add(bias) → Softmax` tail lowers the same way to
//!    [`msrl_tensor::ops::linear_softmax`].
//! 3. **Elementwise-chain fusion** — straight-line runs of elementwise
//!    ops (e.g. `Mul → Add → Tanh`) compile to a small register program
//!    ([`EwProgram`]) executed [`EW_LANE`] elements per instruction
//!    dispatch. Per-element scalar arithmetic is copied verbatim from
//!    `msrl_tensor::ops` and lanes are independent, so fused chains are
//!    bit-identical too.
//! 4. **Dead-node elimination** — nodes that cannot reach a requested
//!    output or a stateful macro op are dropped (outputs mode only).
//! 5. **Liveness-planned buffers** — in outputs mode the plan marks
//!    chain ops whose first dying input can donate its buffer; the
//!    interpreter then runs the chain in place, skipping the
//!    [`msrl_tensor::alloc`] pool round-trip entirely. Chain ops with
//!    no in-level donor may instead steal the buffer of a node that
//!    died at an earlier level ([`CompiledPlan::donors`]); because a
//!    stealer's output is itself an ordinary dying node, donations
//!    chain — one physical buffer flows a→b→c through successive
//!    stealers, most-recent death offered first.
//!
//! All passes are gated on the fusion flag
//! ([`msrl_tensor::par::fusion_enabled`], env `MSRL_FUSION`): with
//! fusion off the plan reproduces the uncompiled interpreter's schedule
//! exactly, op for op. Because fusion may elide dead computation, a
//! *dead* node's missing binding no longer errors under fusion — live
//! behaviour is unchanged.
//!
//! Compile-time totals land on the always-on counters `compile.plans`,
//! `compile.cse`, `compile.fused_linear`, `compile.fused_softmax`,
//! `compile.fused_ew` and `compile.dce`.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use msrl_tensor::{ops, par, Tensor};

use crate::graph::{DataflowGraph, NodeId, OpKind, OpNode};
use crate::{FdgError, Result};

/// Where one elementwise instruction reads an operand from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EwSrc {
    /// The `k`-th external input of the fused chain.
    Ext(usize),
    /// The result of instruction `r` of the same program.
    Reg(usize),
}

/// One instruction of a fused elementwise program. The scalar semantics
/// of every variant are copied verbatim from `msrl_tensor::ops`, which
/// is what makes fused chains bit-identical to the unfused ops.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum EwInst {
    /// `a + b`.
    Add(EwSrc, EwSrc),
    /// `a - b`.
    Sub(EwSrc, EwSrc),
    /// `a * b`.
    Mul(EwSrc, EwSrc),
    /// `a / b`.
    Div(EwSrc, EwSrc),
    /// `v.max(0.0)`.
    Relu(EwSrc),
    /// `v.tanh()`.
    Tanh(EwSrc),
    /// `1 / (1 + e^-v)`.
    Sigmoid(EwSrc),
    /// `v.exp()`.
    Exp(EwSrc),
    /// `v.max(MIN_POSITIVE).ln()`.
    Ln(EwSrc),
    /// `v * v`.
    Square(EwSrc),
    /// `-v`.
    Neg(EwSrc),
    /// `v.clamp(lo, hi)`.
    Clamp(EwSrc, f32, f32),
}

/// A fused elementwise chain: a straight-line register program applied
/// independently at every element of the output.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct EwProgram {
    pub(crate) insts: Vec<EwInst>,
}

impl EwProgram {
    /// Evaluates the program at linear index `idx`. `regs` is scratch of
    /// `insts.len()` slots; `srcs`/`strides` describe the external
    /// inputs (stride 0 = scalar broadcast).
    /// `fm` selects the opt-in fast-math kernels for the
    /// Tanh/Sigmoid/Exp lanes (read once per executor entry from
    /// [`par::fastmath_enabled`], tier level 2 only).
    #[inline]
    fn eval_at(
        &self,
        srcs: &[&[f32]],
        strides: &[usize],
        idx: usize,
        fm: bool,
        regs: &mut [f32],
    ) -> f32 {
        for (r, inst) in self.insts.iter().enumerate() {
            let ld = |s: EwSrc, regs: &[f32]| match s {
                EwSrc::Ext(k) => srcs[k][idx * strides[k]],
                EwSrc::Reg(p) => regs[p],
            };
            regs[r] = match *inst {
                EwInst::Add(a, b) => ld(a, regs) + ld(b, regs),
                EwInst::Sub(a, b) => ld(a, regs) - ld(b, regs),
                EwInst::Mul(a, b) => ld(a, regs) * ld(b, regs),
                EwInst::Div(a, b) => ld(a, regs) / ld(b, regs),
                EwInst::Relu(a) => ld(a, regs).max(0.0),
                EwInst::Tanh(a) => ew_tanh(ld(a, regs), fm),
                EwInst::Sigmoid(a) => ew_sigmoid(ld(a, regs), fm),
                EwInst::Exp(a) => ew_exp(ld(a, regs), fm),
                EwInst::Ln(a) => ld(a, regs).max(f32::MIN_POSITIVE).ln(),
                EwInst::Square(a) => {
                    let v = ld(a, regs);
                    v * v
                }
                EwInst::Neg(a) => -ld(a, regs),
                EwInst::Clamp(a, lo, hi) => ld(a, regs).clamp(lo, hi),
            };
        }
        regs[self.insts.len() - 1]
    }

    /// Evaluates the program for [`EW_LANE`] consecutive elements
    /// starting at `base`, leaving each instruction's lane of results in
    /// `regs` (the output is the last instruction's lane).
    ///
    /// Instruction-outer / lane-inner order performs, for each element,
    /// exactly the scalar sequence [`EwProgram::eval_at`] performs —
    /// elements are independent, so interleaving them cannot change any
    /// element's own operation order, and results stay bit-identical.
    /// What it removes is the per-element instruction dispatch: each
    /// instruction decodes once per lane, and the fixed-bound inner
    /// loops unroll/vectorize. `self_ext` substitutes a pre-loaded lane
    /// for one external slot (the in-place executor's own buffer, read
    /// before overwrite).
    #[inline]
    fn eval_lane(
        &self,
        srcs: &[&[f32]],
        strides: &[usize],
        base: usize,
        self_ext: Option<(usize, &[f32; EW_LANE])>,
        fm: bool,
        regs: &mut [[f32; EW_LANE]],
    ) {
        for r in 0..self.insts.len() {
            // Register programs are SSA: instruction `r` only reads
            // registers `< r`, so the split borrows are disjoint.
            let (done, rest) = regs.split_at_mut(r);
            let dst = &mut rest[0];
            let ld = |s: EwSrc, l: usize, done: &[[f32; EW_LANE]]| match s {
                EwSrc::Ext(k) => match self_ext {
                    Some((sp, lane)) if k == sp => lane[l],
                    _ => srcs[k][(base + l) * strides[k]],
                },
                EwSrc::Reg(p) => done[p][l],
            };
            macro_rules! lanes {
                ($l:ident => $e:expr) => {
                    for $l in 0..EW_LANE {
                        dst[$l] = $e;
                    }
                };
            }
            match self.insts[r] {
                EwInst::Add(a, b) => lanes!(l => ld(a, l, done) + ld(b, l, done)),
                EwInst::Sub(a, b) => lanes!(l => ld(a, l, done) - ld(b, l, done)),
                EwInst::Mul(a, b) => lanes!(l => ld(a, l, done) * ld(b, l, done)),
                EwInst::Div(a, b) => lanes!(l => ld(a, l, done) / ld(b, l, done)),
                EwInst::Relu(a) => lanes!(l => ld(a, l, done).max(0.0)),
                EwInst::Tanh(a) => lanes!(l => ew_tanh(ld(a, l, done), fm)),
                EwInst::Sigmoid(a) => lanes!(l => ew_sigmoid(ld(a, l, done), fm)),
                EwInst::Exp(a) => lanes!(l => ew_exp(ld(a, l, done), fm)),
                EwInst::Ln(a) => lanes!(l => ld(a, l, done).max(f32::MIN_POSITIVE).ln()),
                EwInst::Square(a) => lanes!(l => {
                    let v = ld(a, l, done);
                    v * v
                }),
                EwInst::Neg(a) => lanes!(l => -ld(a, l, done)),
                EwInst::Clamp(a, lo, hi) => lanes!(l => ld(a, l, done).clamp(lo, hi)),
            }
        }
    }
}

/// Lane width of the chunked elementwise executor: each instruction
/// dispatch covers this many consecutive output elements.
pub(crate) const EW_LANE: usize = 8;

/// Tanh lane op: libm by default, the tier-2 polynomial when `fm`. The
/// fast scalars are bitwise-equal to their vector forms, so the lane
/// executor and the scalar remainder stay bit-identical either way.
#[inline]
fn ew_tanh(v: f32, fm: bool) -> f32 {
    if fm {
        msrl_tensor::fastmath::fast_tanh(v)
    } else {
        v.tanh()
    }
}

/// Sigmoid lane op, see [`ew_tanh`].
#[inline]
fn ew_sigmoid(v: f32, fm: bool) -> f32 {
    if fm {
        msrl_tensor::fastmath::fast_sigmoid(v)
    } else {
        1.0 / (1.0 + (-v).exp())
    }
}

/// Exp lane op, see [`ew_tanh`].
#[inline]
fn ew_exp(v: f32, fm: bool) -> f32 {
    if fm {
        msrl_tensor::fastmath::fast_exp(v)
    } else {
        v.exp()
    }
}

/// What one planned pure op executes as.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum PlanOp {
    /// An unfused node, evaluated exactly as the uncompiled interpreter
    /// would.
    Node(OpNode),
    /// A fused `MatMul + bias + activation`; inputs are `[x, w, b]`.
    LinearAct(ops::Act),
    /// A fused policy head `softmax_rows(x·w + b)`; inputs are
    /// `[x, w, b]`.
    LinearSoftmax,
    /// A fused elementwise chain.
    EwChain(EwProgram),
}

impl PlanOp {
    /// Telemetry class label for per-op-class counters.
    pub(crate) fn class(&self) -> &'static str {
        match self {
            PlanOp::Node(node) => node.kind.name(),
            PlanOp::LinearAct(_) => "FusedLinear",
            PlanOp::LinearSoftmax => "FusedLinearSoftmax",
            PlanOp::EwChain(_) => "FusedEw",
        }
    }
}

/// One schedulable pure op of a compiled plan.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ExecOp {
    /// The node id whose arena slot receives the result.
    pub(crate) id: NodeId,
    /// What to execute.
    pub(crate) op: PlanOp,
    /// Input node ids after rewriting by the passes.
    pub(crate) inputs: Vec<NodeId>,
    /// Static output shape.
    pub(crate) shape: Vec<usize>,
    /// Element count (min 1), for the parallelism heuristic.
    pub(crate) workload: usize,
    /// Input position whose buffer this op may steal (chain ops only):
    /// proven by liveness to die here, with exactly matching shape.
    pub(crate) inplace: Option<usize>,
}

/// One step of the barrier schedule.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Step {
    /// A stretch of pure ops, pre-grouped into dependency levels.
    Pure {
        /// Ops by level; every input of a level-`l` op was produced at a
        /// level `< l` or before this step.
        levels: Vec<Vec<ExecOp>>,
        /// Whether a macro op follows (the uncompiled interpreter wraps
        /// such flushes in an `interp.barrier_wait` span).
        before_macro: bool,
    },
    /// A stateful macro op; always a serialisation barrier.
    Macro {
        /// The macro node.
        id: NodeId,
        /// Its inputs after rewriting.
        inputs: Vec<NodeId>,
    },
}

/// What the optimization passes did to one plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Duplicate pure nodes merged by common-subexpression elimination.
    pub cse_merged: usize,
    /// `MatMul(+Add)(+activation)` patterns lowered to the fused kernel.
    pub fused_linear: usize,
    /// `MatMul → Add(bias) → Softmax` policy heads lowered to the fused
    /// [`msrl_tensor::ops::linear_softmax`] kernel.
    pub fused_softmax: usize,
    /// Elementwise nodes absorbed into fused chains.
    pub fused_ew: usize,
    /// Nodes removed as dead (unable to reach an output or macro op).
    pub dce_removed: usize,
    /// Ops the plan executes per evaluation (macro + pure).
    pub ops: usize,
}

/// A compiled, replayable execution plan for one evaluation request.
///
/// Built once by [`compile`] and cached by the interpreter keyed on
/// [`DataflowGraph::stamp`] plus the request parameters; replaying it
/// does no topology sorting, no consumer counting and no pass work.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPlan {
    pub(crate) steps: Vec<Step>,
    /// Per-node remaining-consumer counts (all zero in keep-all mode).
    pub(crate) uses: Vec<usize>,
    /// Per-node retain flags (true everywhere in keep-all mode).
    pub(crate) keep: Vec<bool>,
    /// Cross-level buffer steals: dying node → the EwChain op (by id)
    /// that reuses its buffer as the output, skipping the pool
    /// round-trip. Planned statically from the schedule; the serial
    /// executor stashes the donor at release and the stealer claims it.
    pub(crate) donors: HashMap<NodeId, NodeId>,
    /// Kernel-tier data the interpreter attaches when it promotes a hot
    /// plan: weights packed once for the register-tiled microkernels.
    /// `None` until promotion; [`compile`] always produces `None`.
    pub(crate) tier: Option<TierData>,
    /// What the passes did.
    pub stats: PlanStats,
}

/// Pre-packed operands for a tiered-up hot plan (see
/// [`crate::interp::Interpreter`]): the packed right-hand sides of the
/// plan's `MatMul` / fused-linear ops whose weight input is a `Param`,
/// keyed by that input's node id.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct TierData {
    /// Packed weight per weight-input node id.
    pub(crate) packed: HashMap<NodeId, msrl_tensor::kernels::PackedB>,
    /// The interpreter's params epoch at packing time; a later
    /// `bind_param` bumps the epoch and forces a repack on next
    /// promotion check.
    pub(crate) epoch: u64,
}

/// True for ops whose output element `i` depends only on element `i`
/// (after broadcast) of each input — the fusable elementwise set.
fn is_elementwise(kind: &OpKind) -> bool {
    matches!(
        kind,
        OpKind::Add
            | OpKind::Sub
            | OpKind::Mul
            | OpKind::Div
            | OpKind::Relu
            | OpKind::Tanh
            | OpKind::Sigmoid
            | OpKind::Exp
            | OpKind::Ln
            | OpKind::Square
            | OpKind::Neg
            | OpKind::Clamp { .. }
    )
}

/// Required input count for a fusable elementwise op.
fn ew_arity(kind: &OpKind) -> usize {
    match kind {
        OpKind::Add | OpKind::Sub | OpKind::Mul | OpKind::Div => 2,
        _ => 1,
    }
}

/// The fused-activation equivalent of an activation node kind.
fn act_of(kind: &OpKind) -> Option<ops::Act> {
    match kind {
        OpKind::Relu => Some(ops::Act::Relu),
        OpKind::Tanh => Some(ops::Act::Tanh),
        OpKind::Sigmoid => Some(ops::Act::Sigmoid),
        _ => None,
    }
}

/// Whether node `i` may feed a fused chain of shape `shape` as an
/// external: either exactly that shape, or a one-element broadcast.
fn ext_ok(graph: &DataflowGraph, i: NodeId, shape: &[usize]) -> bool {
    match graph.node(i) {
        Ok(nd) => {
            nd.shape == shape
                || (nd.shape.iter().product::<usize>() == 1 && nd.shape.len() <= shape.len())
        }
        Err(_) => false,
    }
}

/// Upper bound on fused-chain length; beyond this the register program's
/// scratch outgrows any realistic win.
const MAX_CHAIN: usize = 16;

/// Compiles one evaluation request into a replayable plan.
///
/// `ids` is the node set to evaluate, `preset_ids` the ids whose values
/// the caller supplies (fragment entries), and `outputs` switches
/// retain mode: `None` keeps every value (whole-graph / full-fragment
/// evaluation), `Some(outs)` keeps only `outs` and plans consumer
/// refcounts so everything else recycles. `fusion` gates every
/// optimization pass; with it off the plan replays the unoptimized
/// schedule exactly.
///
/// # Errors
///
/// Returns [`FdgError::UnknownNode`] when `ids` references a node that
/// is neither in the graph nor preset.
pub fn compile(
    graph: &DataflowGraph,
    ids: &[NodeId],
    preset_ids: &[NodeId],
    outputs: Option<&[NodeId]>,
    fusion: bool,
) -> Result<CompiledPlan> {
    let n = graph.len();
    let mut sorted = ids.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    // Out-of-graph ids are legal only as presets (mirrors the
    // uncompiled interpreter, which fails the same way on first use).
    if let Some(&id) = sorted.iter().find(|&&id| id >= n && !preset_ids.contains(&id)) {
        return Err(FdgError::UnknownNode { id });
    }
    let todo: Vec<NodeId> =
        sorted.into_iter().filter(|&id| id < n && !preset_ids.contains(&id)).collect();

    let keep_all = outputs.is_none();
    let mut keep = vec![keep_all; n];
    if let Some(outs) = outputs {
        for &id in outs {
            if id < n {
                keep[id] = true;
            }
        }
    }

    let mut in_set = vec![false; n];
    let mut alive = vec![false; n];
    let mut inputs_of: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut batch_of = vec![0usize; n];
    let mut batch = 0usize;
    for &id in &todo {
        let node = graph.node(id)?;
        in_set[id] = true;
        alive[id] = true;
        inputs_of[id] = node.inputs.clone();
        if node.kind.is_macro() {
            batch += 1;
            batch_of[id] = batch;
            batch += 1;
        } else {
            batch_of[id] = batch;
        }
    }

    let mut lowered: Vec<Option<PlanOp>> = (0..n).map(|_| None).collect();
    let mut stats = PlanStats::default();

    if fusion {
        cse_pass(graph, &todo, &mut inputs_of, &mut alive, &mut lowered, &keep, &mut stats)?;
        linear_pass(
            graph,
            &todo,
            &mut inputs_of,
            &mut alive,
            &mut lowered,
            &keep,
            &in_set,
            &batch_of,
            &mut stats,
        )?;
        ew_chain_pass(
            graph,
            &todo,
            &mut inputs_of,
            &mut alive,
            &mut lowered,
            &keep,
            &in_set,
            &batch_of,
            &mut stats,
        )?;
        if !keep_all {
            dce_pass(graph, &todo, &inputs_of, &mut alive, &keep, &mut stats)?;
        }
    }

    // Consumer refcounts over the *final* edges; the uncompiled
    // interpreter only counts (and therefore only recycles) in retain
    // mode, and the plan matches that.
    let mut uses = vec![0usize; n];
    if !keep_all {
        for &id in &todo {
            if !alive[id] {
                continue;
            }
            for &i in &inputs_of[id] {
                if i < n {
                    uses[i] += 1;
                }
            }
        }
    }

    // Barrier schedule: pure stretches level-grouped, macros serial.
    let mut steps: Vec<Step> = Vec::new();
    let mut pure: Vec<NodeId> = Vec::new();
    for &id in &todo {
        if !alive[id] {
            continue;
        }
        if graph.node(id)?.kind.is_macro() {
            if !pure.is_empty() {
                let levels = levelize(graph, &pure, &inputs_of, &mut lowered)?;
                steps.push(Step::Pure { levels, before_macro: true });
                pure.clear();
            }
            steps.push(Step::Macro { id, inputs: inputs_of[id].clone() });
            stats.ops += 1;
        } else {
            pure.push(id);
        }
    }
    if !pure.is_empty() {
        let levels = levelize(graph, &pure, &inputs_of, &mut lowered)?;
        steps.push(Step::Pure { levels, before_macro: false });
    }
    for step in &steps {
        if let Step::Pure { levels, .. } = step {
            stats.ops += levels.iter().map(Vec::len).sum::<usize>();
        }
    }

    // Liveness-planned buffers: a chain op may steal the buffer of its
    // first input that (a) dies at this op (sole remaining consumer,
    // not retained) and (b) has exactly the output's shape. Only
    // meaningful in retain mode — with uses all zero nothing matches.
    if fusion {
        for step in &mut steps {
            let Step::Pure { levels, .. } = step else { continue };
            for op in levels.iter_mut().flatten() {
                if !matches!(op.op, PlanOp::EwChain(_)) {
                    continue;
                }
                op.inplace = op.inputs.iter().position(|&i| {
                    i < n
                        && uses[i] == 1
                        && !keep[i]
                        && graph.node(i).map(|nd| nd.shape == op.shape).unwrap_or(false)
                });
            }
        }
    }

    // Cross-level buffer steals: an EwChain op with no in-level donor
    // may instead reuse the buffer of a node that died at an *earlier*
    // level (or before an earlier macro barrier) with exactly its
    // volume. Times are level-granular, and only strictly-earlier
    // deaths qualify, so the donor's buffer is provably free when the
    // stealer runs — its own inputs (which die *at* the op) never
    // match. The proof extends to chains by induction: a stealer's
    // output lives in its donor's buffer, and because that output is
    // an ordinary dying node it re-enters the death map and may be
    // donated onward once it dies — again strictly before its own
    // stealer's level. One physical buffer thus flows a→b→c through
    // successive stealers, each hop justified by the same
    // strictly-earlier-death argument, with no hop limit.
    let mut donors: HashMap<NodeId, NodeId> = HashMap::new();
    if fusion && !keep_all {
        let mut death: HashMap<NodeId, usize> = HashMap::new();
        let mut t = 0usize;
        for step in &steps {
            match step {
                Step::Pure { levels, .. } => {
                    for level in levels {
                        t += 1;
                        for op in level {
                            for &i in &op.inputs {
                                if i < n && !keep[i] && uses[i] > 0 {
                                    let slot = death.entry(i).or_insert(t);
                                    *slot = (*slot).max(t);
                                }
                            }
                        }
                    }
                }
                Step::Macro { inputs, .. } => {
                    t += 1;
                    for &i in inputs {
                        if i < n && !keep[i] && uses[i] > 0 {
                            let slot = death.entry(i).or_insert(t);
                            *slot = (*slot).max(t);
                        }
                    }
                }
            }
        }
        // An input consumed by an in-place chain never reaches the
        // release path — its buffer becomes the chain's output — so it
        // must not be offered as a cross-level donor.
        for step in &steps {
            let Step::Pure { levels, .. } = step else { continue };
            for op in levels.iter().flatten() {
                if let Some(&i) = op.inplace.and_then(|p| op.inputs.get(p)) {
                    death.remove(&i);
                }
            }
        }
        // Deterministic candidate order (HashMap iteration is not):
        // most recent death first, node id breaking ties. A stealer
        // then prefers the buffer that just went cold — usually the
        // previous stealer's output, so chains keep riding one
        // cache-warm buffer instead of resurrecting one that died (and
        // was evicted) many levels ago.
        let mut dying: Vec<(NodeId, usize)> = death.into_iter().collect();
        dying.sort_unstable_by_key(|&(d, dt)| (std::cmp::Reverse(dt), d));
        let mut t = 0usize;
        for step in &steps {
            let Step::Pure { levels, .. } = step else {
                t += 1;
                continue;
            };
            for level in levels {
                t += 1;
                for op in level {
                    if !matches!(op.op, PlanOp::EwChain(_)) || op.inplace.is_some() {
                        continue;
                    }
                    let vol: usize = op.shape.iter().product();
                    if vol == 0 {
                        continue;
                    }
                    let donor = dying.iter().find(|&&(d, dt)| {
                        dt < t
                            && !donors.contains_key(&d)
                            && graph
                                .node(d)
                                .map(|nd| nd.shape.iter().product::<usize>() == vol)
                                .unwrap_or(false)
                    });
                    if let Some(&(d, _)) = donor {
                        donors.insert(d, op.id);
                    }
                }
            }
        }
    }

    msrl_telemetry::static_counter!("compile.plans").add(1);
    msrl_telemetry::static_counter!("compile.cse").add(stats.cse_merged as u64);
    msrl_telemetry::static_counter!("compile.fused_linear").add(stats.fused_linear as u64);
    msrl_telemetry::static_counter!("compile.fused_softmax").add(stats.fused_softmax as u64);
    msrl_telemetry::static_counter!("compile.fused_ew").add(stats.fused_ew as u64);
    msrl_telemetry::static_counter!("compile.dce").add(stats.dce_removed as u64);

    Ok(CompiledPlan { steps, uses, keep, donors, tier: None, stats })
}

/// Common-subexpression elimination. Inputs of *every* node (macros
/// included) are resolved through the redirect map; duplicate pure
/// nodes then either die or, when retained, degrade to `Identity`.
fn cse_pass(
    graph: &DataflowGraph,
    todo: &[NodeId],
    inputs_of: &mut [Vec<NodeId>],
    alive: &mut [bool],
    lowered: &mut [Option<PlanOp>],
    keep: &[bool],
    stats: &mut PlanStats,
) -> Result<()> {
    let mut redirect: HashMap<NodeId, NodeId> = HashMap::new();
    let mut seen: HashMap<(String, Vec<NodeId>), NodeId> = HashMap::new();
    for &id in todo {
        for i in inputs_of[id].iter_mut() {
            if let Some(&r) = redirect.get(i) {
                *i = r;
            }
        }
        let node = graph.node(id)?;
        // Macros are stateful (never mergeable); Const values live in a
        // side table keyed by id, so two Const nodes are not equal.
        if node.kind.is_macro() || matches!(node.kind, OpKind::Const) {
            continue;
        }
        let key = (format!("{:?}", node.kind), inputs_of[id].clone());
        match seen.entry(key) {
            Entry::Occupied(e) => {
                let rep = *e.get();
                stats.cse_merged += 1;
                redirect.insert(id, rep);
                if keep[id] {
                    // The caller wants this slot populated: alias it.
                    lowered[id] = Some(PlanOp::Node(OpNode {
                        id,
                        kind: OpKind::Identity,
                        inputs: vec![rep],
                        shape: node.shape.clone(),
                        device_req: node.device_req,
                        component: node.component.clone(),
                    }));
                    inputs_of[id] = vec![rep];
                } else {
                    alive[id] = false;
                    inputs_of[id].clear();
                }
            }
            Entry::Vacant(e) => {
                e.insert(id);
            }
        }
    }
    Ok(())
}

/// Rebuilds consumer lists over the current (post-pass) edges of alive
/// nodes.
fn build_cons(
    todo: &[NodeId],
    inputs_of: &[Vec<NodeId>],
    alive: &[bool],
    n: usize,
) -> Vec<Vec<NodeId>> {
    let mut cons: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for &id in todo {
        if !alive[id] {
            continue;
        }
        for &i in &inputs_of[id] {
            if i < n {
                cons[i].push(id);
            }
        }
    }
    cons
}

/// Lowers `MatMul → Add(bias) → activation` and bare `MatMul → Add(bias)`
/// patterns to [`PlanOp::LinearAct`].
#[allow(clippy::too_many_arguments)]
fn linear_pass(
    graph: &DataflowGraph,
    todo: &[NodeId],
    inputs_of: &mut [Vec<NodeId>],
    alive: &mut [bool],
    lowered: &mut [Option<PlanOp>],
    keep: &[bool],
    in_set: &[bool],
    batch_of: &[usize],
    stats: &mut PlanStats,
) -> Result<()> {
    let n = graph.len();
    let mut cons = build_cons(todo, inputs_of, alive, n);

    // A MatMul is absorbable into a consumer `user` when it is interior:
    // same batch, not retained, and `user` its only consumer.
    let mm_ok = |m: NodeId,
                 user: NodeId,
                 alive: &[bool],
                 lowered: &[Option<PlanOp>],
                 inputs_of: &[Vec<NodeId>],
                 cons: &[Vec<NodeId>]|
     -> bool {
        m < n
            && in_set[m]
            && alive[m]
            && lowered[m].is_none()
            && !keep[m]
            && cons[m].len() == 1
            && cons[m][0] == user
            && batch_of[m] == batch_of[user]
            && graph
                .node(m)
                .map(|nd| nd.kind == OpKind::MatMul && nd.shape.len() == 2)
                .unwrap_or(false)
            && inputs_of[m].len() == 2
    };
    // The bias must be rank-1 of the matmul's column count, so the fused
    // kernel's row epilogue matches the broadcast `Add` exactly.
    let bias_ok = |b: NodeId, m: NodeId| -> bool {
        match (graph.node(b), graph.node(m)) {
            (Ok(bn), Ok(mn)) => {
                bn.shape.len() == 1 && mn.shape.len() == 2 && bn.shape[0] == mn.shape[1]
            }
            _ => false,
        }
    };

    // Pass A: tail-anchored — MatMul → Add → Relu/Tanh/Sigmoid lowers to
    // the fused linear kernel, MatMul → Add → Softmax (the policy head)
    // to the fused linear-softmax kernel.
    for &act_id in todo {
        if !alive[act_id] || lowered[act_id].is_some() {
            continue;
        }
        let anchor_kind = graph.node(act_id)?.kind.clone();
        let softmax = anchor_kind == OpKind::Softmax;
        let act = act_of(&anchor_kind);
        if act.is_none() && !softmax {
            continue;
        }
        if inputs_of[act_id].len() != 1 {
            continue;
        }
        let d = inputs_of[act_id][0];
        let add_ok = d < n
            && in_set[d]
            && alive[d]
            && lowered[d].is_none()
            && !keep[d]
            && cons[d].len() == 1
            && cons[d][0] == act_id
            && batch_of[d] == batch_of[act_id]
            && graph.node(d)?.kind == OpKind::Add
            && inputs_of[d].len() == 2;
        if !add_ok {
            continue;
        }
        let (a0, a1) = (inputs_of[d][0], inputs_of[d][1]);
        // Addition commutes bitwise, so Add(m, b) and Add(b, m) both fuse.
        let pick = if mm_ok(a0, d, alive, lowered, inputs_of, &cons) && bias_ok(a1, a0) {
            Some((a0, a1))
        } else if mm_ok(a1, d, alive, lowered, inputs_of, &cons) && bias_ok(a0, a1) {
            Some((a1, a0))
        } else {
            None
        };
        let Some((m, b)) = pick else { continue };
        let (x, w) = (inputs_of[m][0], inputs_of[m][1]);
        if softmax {
            lowered[act_id] = Some(PlanOp::LinearSoftmax);
            stats.fused_softmax += 1;
        } else {
            lowered[act_id] = Some(PlanOp::LinearAct(act.expect("anchor is an activation")));
            stats.fused_linear += 1;
        }
        inputs_of[act_id] = vec![x, w, b];
        alive[d] = false;
        alive[m] = false;
        inputs_of[d].clear();
        inputs_of[m].clear();
        // Keep `cons` exact so a later pattern never matches through a
        // node this fusion already consumed.
        for c in cons[x].iter_mut() {
            if *c == m {
                *c = act_id;
            }
        }
        for c in cons[w].iter_mut() {
            if *c == m {
                *c = act_id;
            }
        }
        for c in cons[b].iter_mut() {
            if *c == d {
                *c = act_id;
            }
        }
        cons[m].clear();
        cons[d].clear();
    }

    // Pass B: bare MatMul → Add(bias), fused with a linear epilogue.
    for &add_id in todo {
        if !alive[add_id] || lowered[add_id].is_some() {
            continue;
        }
        if graph.node(add_id)?.kind != OpKind::Add || inputs_of[add_id].len() != 2 {
            continue;
        }
        let (a0, a1) = (inputs_of[add_id][0], inputs_of[add_id][1]);
        let pick = if mm_ok(a0, add_id, alive, lowered, inputs_of, &cons) && bias_ok(a1, a0) {
            Some((a0, a1))
        } else if mm_ok(a1, add_id, alive, lowered, inputs_of, &cons) && bias_ok(a0, a1) {
            Some((a1, a0))
        } else {
            None
        };
        let Some((m, b)) = pick else { continue };
        let (x, w) = (inputs_of[m][0], inputs_of[m][1]);
        lowered[add_id] = Some(PlanOp::LinearAct(ops::Act::Linear));
        inputs_of[add_id] = vec![x, w, b];
        alive[m] = false;
        inputs_of[m].clear();
        stats.fused_linear += 1;
        for c in cons[x].iter_mut() {
            if *c == m {
                *c = add_id;
            }
        }
        for c in cons[w].iter_mut() {
            if *c == m {
                *c = add_id;
            }
        }
        cons[m].clear();
    }
    Ok(())
}

/// Greedily fuses straight-line elementwise chains into
/// [`PlanOp::EwChain`] register programs.
#[allow(clippy::too_many_arguments)]
fn ew_chain_pass(
    graph: &DataflowGraph,
    todo: &[NodeId],
    inputs_of: &mut [Vec<NodeId>],
    alive: &mut [bool],
    lowered: &mut [Option<PlanOp>],
    keep: &[bool],
    in_set: &[bool],
    batch_of: &[usize],
    stats: &mut PlanStats,
) -> Result<()> {
    let n = graph.len();
    let cons = build_cons(todo, inputs_of, alive, n);
    let mut in_chain = vec![false; n];

    for &start in todo {
        if !alive[start] || lowered[start].is_some() || in_chain[start] {
            continue;
        }
        let node = graph.node(start)?;
        if !is_elementwise(&node.kind) || inputs_of[start].len() != ew_arity(&node.kind) {
            continue;
        }
        let shape = &node.shape;
        if !inputs_of[start].iter().all(|&i| ext_ok(graph, i, shape)) {
            continue;
        }
        let mut chain = vec![start];
        loop {
            let last = *chain.last().unwrap();
            if keep[last] || cons[last].len() != 1 || chain.len() >= MAX_CHAIN {
                break;
            }
            let c = cons[last][0];
            if c >= n
                || !in_set[c]
                || !alive[c]
                || lowered[c].is_some()
                || in_chain[c]
                || batch_of[c] != batch_of[start]
            {
                break;
            }
            let cn = graph.node(c)?;
            if !is_elementwise(&cn.kind)
                || cn.shape != *shape
                || inputs_of[c].len() != ew_arity(&cn.kind)
                || !inputs_of[c].iter().all(|&i| i == last || ext_ok(graph, i, shape))
            {
                break;
            }
            chain.push(c);
        }
        if chain.len() < 2 {
            continue;
        }

        let mut insts: Vec<EwInst> = Vec::with_capacity(chain.len());
        let mut reg_of: HashMap<NodeId, usize> = HashMap::new();
        let mut ext: Vec<NodeId> = Vec::new();
        for &id in &chain {
            let mut src = |i: NodeId| -> EwSrc {
                if let Some(&r) = reg_of.get(&i) {
                    return EwSrc::Reg(r);
                }
                match ext.iter().position(|&e| e == i) {
                    Some(k) => EwSrc::Ext(k),
                    None => {
                        ext.push(i);
                        EwSrc::Ext(ext.len() - 1)
                    }
                }
            };
            let ins = &inputs_of[id];
            let inst = match &graph.node(id)?.kind {
                OpKind::Add => EwInst::Add(src(ins[0]), src(ins[1])),
                OpKind::Sub => EwInst::Sub(src(ins[0]), src(ins[1])),
                OpKind::Mul => EwInst::Mul(src(ins[0]), src(ins[1])),
                OpKind::Div => EwInst::Div(src(ins[0]), src(ins[1])),
                OpKind::Relu => EwInst::Relu(src(ins[0])),
                OpKind::Tanh => EwInst::Tanh(src(ins[0])),
                OpKind::Sigmoid => EwInst::Sigmoid(src(ins[0])),
                OpKind::Exp => EwInst::Exp(src(ins[0])),
                OpKind::Ln => EwInst::Ln(src(ins[0])),
                OpKind::Square => EwInst::Square(src(ins[0])),
                OpKind::Neg => EwInst::Neg(src(ins[0])),
                OpKind::Clamp { lo, hi } => EwInst::Clamp(src(ins[0]), *lo, *hi),
                other => return Err(FdgError::MissingKernel { op: other.name().to_string() }),
            };
            reg_of.insert(id, insts.len());
            insts.push(inst);
        }
        stats.fused_ew += chain.len();
        let last = *chain.last().unwrap();
        for &id in &chain[..chain.len() - 1] {
            alive[id] = false;
            in_chain[id] = true;
            inputs_of[id].clear();
        }
        in_chain[last] = true;
        lowered[last] = Some(PlanOp::EwChain(EwProgram { insts }));
        inputs_of[last] = ext;
    }
    Ok(())
}

/// Removes alive nodes that cannot reach a retained output or a macro
/// op (whose kernel side effects must always run).
fn dce_pass(
    graph: &DataflowGraph,
    todo: &[NodeId],
    inputs_of: &[Vec<NodeId>],
    alive: &mut [bool],
    keep: &[bool],
    stats: &mut PlanStats,
) -> Result<()> {
    let n = graph.len();
    let mut reach = vec![false; n];
    let mut stack: Vec<NodeId> = Vec::new();
    for &id in todo {
        if alive[id] && (keep[id] || graph.node(id)?.kind.is_macro()) {
            reach[id] = true;
            stack.push(id);
        }
    }
    while let Some(id) = stack.pop() {
        for &i in &inputs_of[id] {
            if i < n && alive[i] && !reach[i] {
                reach[i] = true;
                stack.push(i);
            }
        }
    }
    for &id in todo {
        if alive[id] && !reach[id] {
            alive[id] = false;
            stats.dce_removed += 1;
        }
    }
    Ok(())
}

/// Groups one pure batch into dependency levels, replicating the
/// uncompiled interpreter's formula exactly: a node's level is one past
/// the deepest of its in-batch inputs; everything already materialised
/// contributes zero.
fn levelize(
    graph: &DataflowGraph,
    batch: &[NodeId],
    inputs_of: &[Vec<NodeId>],
    lowered: &mut [Option<PlanOp>],
) -> Result<Vec<Vec<ExecOp>>> {
    let mut level_of: HashMap<NodeId, usize> = HashMap::with_capacity(batch.len());
    let mut levels: Vec<Vec<ExecOp>> = Vec::new();
    for &id in batch {
        let node = graph.node(id)?;
        let lvl =
            inputs_of[id].iter().filter_map(|i| level_of.get(i)).map(|l| l + 1).max().unwrap_or(0);
        level_of.insert(id, lvl);
        if levels.len() <= lvl {
            levels.resize_with(lvl + 1, Vec::new);
        }
        let op = lowered[id].take().unwrap_or_else(|| PlanOp::Node(node.clone()));
        levels[lvl].push(ExecOp {
            id,
            op,
            inputs: inputs_of[id].clone(),
            shape: node.shape.clone(),
            workload: node.shape.iter().product::<usize>().max(1),
            inplace: None,
        });
    }
    Ok(levels)
}

/// Per-input element strides for a fused chain evaluated at `vol`
/// output elements: 1 for a full-size input, 0 for a one-element
/// broadcast.
fn ew_strides(ins: &[&Tensor], vol: usize, shape: &[usize]) -> Result<Vec<usize>> {
    ins.iter()
        .map(|t| {
            if t.len() == vol {
                Ok(1)
            } else if t.len() == 1 {
                Ok(0)
            } else {
                Err(FdgError::Tensor(msrl_tensor::TensorError::ShapeMismatch {
                    op: "ew_chain",
                    lhs: shape.to_vec(),
                    rhs: t.shape().to_vec(),
                }))
            }
        })
        .collect()
}

/// Fills `chunk` (at absolute element offset `offset`) with the
/// program's results: whole lanes through the chunked executor, the
/// remainder through the scalar interpreter. Bit-identical either way.
fn run_ew_fill(
    prog: &EwProgram,
    srcs: &[&[f32]],
    strides: &[usize],
    offset: usize,
    fm: bool,
    chunk: &mut [f32],
) {
    let last = prog.insts.len() - 1;
    let mut regs = vec![[0.0f32; EW_LANE]; prog.insts.len()];
    let mut i = 0;
    while i + EW_LANE <= chunk.len() {
        prog.eval_lane(srcs, strides, offset + i, None, fm, &mut regs);
        chunk[i..i + EW_LANE].copy_from_slice(&regs[last]);
        i += EW_LANE;
    }
    let mut sregs = vec![0.0f32; prog.insts.len()];
    for (j, slot) in chunk.iter_mut().enumerate().skip(i) {
        *slot = prog.eval_at(srcs, strides, offset + j, fm, &mut sregs);
    }
}

/// Executes a fused elementwise chain into a fresh (pooled) buffer.
pub(crate) fn run_ew(prog: &EwProgram, ins: &[&Tensor], shape: &[usize]) -> Result<Tensor> {
    let vol: usize = shape.iter().product();
    let strides = ew_strides(ins, vol, shape)?;
    let srcs: Vec<&[f32]> = ins.iter().map(|t| t.data()).collect();
    let mut data = msrl_tensor::alloc::take_zeroed(vol);
    let fm = par::fastmath_enabled();
    let fill = |offset: usize, chunk: &mut [f32]| {
        run_ew_fill(prog, &srcs, &strides, offset, fm, chunk);
    };
    if par::should_parallelize(vol, par::PAR_MIN_ELEMS) {
        par::fill_chunks(&mut data, fill);
    } else {
        fill(0, &mut data);
    }
    Ok(Tensor::from_vec(data, shape)?)
}

/// Executes a fused elementwise chain into a buffer donated by a node
/// that died at an earlier level (a cross-level steal): no pool take,
/// no zeroing, no give-back. Every element of `data` is overwritten;
/// its length must equal the output volume (the donor plan guarantees
/// it, and the executor re-checks before claiming).
pub(crate) fn run_ew_into(
    prog: &EwProgram,
    ins: &[&Tensor],
    shape: &[usize],
    mut data: Vec<f32>,
) -> Result<Tensor> {
    let vol: usize = shape.iter().product();
    debug_assert_eq!(data.len(), vol, "donated buffer must match the output volume");
    let strides = ew_strides(ins, vol, shape)?;
    let srcs: Vec<&[f32]> = ins.iter().map(|t| t.data()).collect();
    run_ew_fill(prog, &srcs, &strides, 0, par::fastmath_enabled(), &mut data);
    Ok(Tensor::from_vec(data, shape)?)
}

/// Executes a fused elementwise chain in place, reusing `own`'s buffer
/// as the output (the liveness plan proved it dies here). `others`
/// holds the remaining inputs with `None` at `self_pos`. Bit-identical
/// to [`run_ew`]: each element's old value is read before it is
/// overwritten, and the op is strictly elementwise.
pub(crate) fn run_ew_inplace(
    prog: &EwProgram,
    mut own: Tensor,
    self_pos: usize,
    others: &[Option<&Tensor>],
) -> Result<Tensor> {
    let vol = own.len();
    let mut strides = vec![1usize; others.len()];
    let mut srcs: Vec<&[f32]> = vec![&[]; others.len()];
    for (k, o) in others.iter().enumerate() {
        if k == self_pos {
            continue;
        }
        let t = o.ok_or(FdgError::MissingInput { node: 0 })?;
        strides[k] = if t.len() == vol {
            1
        } else if t.len() == 1 {
            0
        } else {
            return Err(FdgError::Tensor(msrl_tensor::TensorError::ShapeMismatch {
                op: "ew_chain",
                lhs: own.shape().to_vec(),
                rhs: t.shape().to_vec(),
            }));
        };
        srcs[k] = t.data();
    }
    let last = prog.insts.len() - 1;
    let fm = par::fastmath_enabled();
    let data = own.data_mut();
    // Whole lanes through the chunked executor: the op's own lane is
    // copied out before the overwrite, exactly like the scalar path's
    // read-before-write.
    let mut lregs = vec![[0.0f32; EW_LANE]; prog.insts.len()];
    let mut i = 0;
    while i + EW_LANE <= vol {
        let mut selfv = [0.0f32; EW_LANE];
        selfv.copy_from_slice(&data[i..i + EW_LANE]);
        prog.eval_lane(&srcs, &strides, i, Some((self_pos, &selfv)), fm, &mut lregs);
        data[i..i + EW_LANE].copy_from_slice(&lregs[last]);
        i += EW_LANE;
    }
    // Scalar remainder.
    let mut regs = vec![0.0f32; prog.insts.len()];
    for idx in i..vol {
        let selfv = data[idx];
        for (r, inst) in prog.insts.iter().enumerate() {
            let ld = |s: EwSrc, regs: &[f32]| match s {
                EwSrc::Ext(k) if k == self_pos => selfv,
                EwSrc::Ext(k) => srcs[k][idx * strides[k]],
                EwSrc::Reg(p) => regs[p],
            };
            regs[r] = match *inst {
                EwInst::Add(a, b) => ld(a, &regs) + ld(b, &regs),
                EwInst::Sub(a, b) => ld(a, &regs) - ld(b, &regs),
                EwInst::Mul(a, b) => ld(a, &regs) * ld(b, &regs),
                EwInst::Div(a, b) => ld(a, &regs) / ld(b, &regs),
                EwInst::Relu(a) => ld(a, &regs).max(0.0),
                EwInst::Tanh(a) => ew_tanh(ld(a, &regs), fm),
                EwInst::Sigmoid(a) => ew_sigmoid(ld(a, &regs), fm),
                EwInst::Exp(a) => ew_exp(ld(a, &regs), fm),
                EwInst::Ln(a) => ld(a, &regs).max(f32::MIN_POSITIVE).ln(),
                EwInst::Square(a) => {
                    let v = ld(a, &regs);
                    v * v
                }
                EwInst::Neg(a) => -ld(a, &regs),
                EwInst::Clamp(a, lo, hi) => ld(a, &regs).clamp(lo, hi),
            };
        }
        data[idx] = regs[prog.insts.len() - 1];
    }
    Ok(own)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{trace_mlp, TraceCtx};

    fn pure_ops(plan: &CompiledPlan) -> Vec<&ExecOp> {
        plan.steps
            .iter()
            .filter_map(|s| match s {
                Step::Pure { levels, .. } => Some(levels.iter().flatten()),
                Step::Macro { .. } => None,
            })
            .flatten()
            .collect()
    }

    #[test]
    fn mlp_lowers_to_fused_linears() {
        let ctx = TraceCtx::new();
        let x = ctx.input("x", &[4, 3]);
        let out = trace_mlp(&ctx, "net", &x, &[3, 8, 2]);
        let graph = ctx.finish();
        let ids: Vec<NodeId> = (0..graph.len()).collect();
        let plan = compile(&graph, &ids, &[], Some(&[out.id()]), true).unwrap();
        // Layer 0 (matmul+add+tanh) fuses via the activation pattern,
        // layer 1 (matmul+add) via the bare-add pattern.
        assert_eq!(plan.stats.fused_linear, 2, "{:?}", plan.stats);
        let fused: Vec<_> = pure_ops(&plan)
            .into_iter()
            .filter(|op| matches!(op.op, PlanOp::LinearAct(_)))
            .collect();
        assert_eq!(fused.len(), 2);
        for op in fused {
            assert_eq!(op.inputs.len(), 3, "fused linear takes [x, w, b]");
        }
    }

    #[test]
    fn elementwise_chain_fuses_to_one_pass() {
        let ctx = TraceCtx::new();
        let x = ctx.input("x", &[8]);
        let y = ctx.input("y", &[8]);
        let out = x.mul(&y).add(&x).tanh();
        let graph = ctx.finish();
        let ids: Vec<NodeId> = (0..graph.len()).collect();
        let plan = compile(&graph, &ids, &[], Some(&[out.id()]), true).unwrap();
        assert_eq!(plan.stats.fused_ew, 3, "{:?}", plan.stats);
        let ops = pure_ops(&plan);
        let chains: Vec<_> = ops.iter().filter(|op| matches!(op.op, PlanOp::EwChain(_))).collect();
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].id, out.id());
        // Externals dedup: x is read by two instructions but listed once.
        assert_eq!(chains[0].inputs, vec![x.id(), y.id()]);
    }

    #[test]
    fn cse_merges_duplicate_subexpressions() {
        let ctx = TraceCtx::new();
        let x = ctx.input("x", &[4]);
        let a = x.square();
        let b = x.square();
        let c = a.add(&b);
        let graph = ctx.finish();
        let ids: Vec<NodeId> = (0..graph.len()).collect();
        let plan = compile(&graph, &ids, &[], Some(&[c.id()]), true).unwrap();
        assert_eq!(plan.stats.cse_merged, 1, "{:?}", plan.stats);
        // The surviving square feeds add(dup, dup) — two consumer slots,
        // so it cannot chain — and the plan runs x, square, add only.
        assert_eq!(plan.stats.ops, 3, "{:?}", plan.stats);
        let add = pure_ops(&plan).into_iter().find(|op| op.id == c.id()).unwrap();
        assert_eq!(add.inputs, vec![a.id(), a.id()], "both edges point at the survivor");
    }

    #[test]
    fn dead_branches_are_eliminated() {
        let ctx = TraceCtx::new();
        let x = ctx.input("x", &[4]);
        let live = x.relu();
        let _dead = x.exp().square().sum_all();
        let graph = ctx.finish();
        let ids: Vec<NodeId> = (0..graph.len()).collect();
        let plan = compile(&graph, &ids, &[], Some(&[live.id()]), true).unwrap();
        // exp→square fused first (2 ops → 1 chain), then the chain and
        // sum_all die: only x and the live relu execute.
        assert_eq!(plan.stats.dce_removed, 2, "{:?}", plan.stats);
        assert_eq!(plan.stats.ops, 2, "{:?}", plan.stats);
        assert!(pure_ops(&plan).iter().all(|op| op.id <= live.id()));
    }

    #[test]
    fn fusion_off_replays_the_unoptimized_schedule() {
        let ctx = TraceCtx::new();
        let x = ctx.input("x", &[4, 3]);
        let out = trace_mlp(&ctx, "net", &x, &[3, 8, 2]);
        let graph = ctx.finish();
        let ids: Vec<NodeId> = (0..graph.len()).collect();
        let plan = compile(&graph, &ids, &[], Some(&[out.id()]), false).unwrap();
        assert_eq!(plan.stats, PlanStats { ops: graph.len(), ..PlanStats::default() });
        assert!(pure_ops(&plan).iter().all(|op| matches!(op.op, PlanOp::Node(_))));
    }

    #[test]
    fn run_ew_matches_separate_ops_bitwise() {
        // (x * y + x).tanh() with a scalar broadcast thrown in.
        let x =
            Tensor::from_vec((0..24).map(|i| (i as f32 * 0.37).sin()).collect(), &[4, 6]).unwrap();
        let y =
            Tensor::from_vec((0..24).map(|i| (i as f32 * 0.11).cos()).collect(), &[4, 6]).unwrap();
        let s = Tensor::scalar(0.25);
        let prog = EwProgram {
            insts: vec![
                EwInst::Mul(EwSrc::Ext(0), EwSrc::Ext(1)),
                EwInst::Add(EwSrc::Reg(0), EwSrc::Ext(0)),
                EwInst::Div(EwSrc::Reg(1), EwSrc::Ext(2)),
                EwInst::Tanh(EwSrc::Reg(2)),
            ],
        };
        let fused = run_ew(&prog, &[&x, &y, &s], &[4, 6]).unwrap();
        let expect =
            ops::tanh(&ops::div(&ops::add(&ops::mul(&x, &y).unwrap(), &x).unwrap(), &s).unwrap());
        assert_eq!(fused.shape(), expect.shape());
        assert_eq!(fused.data(), expect.data(), "fused chain must be bit-identical");

        // The in-place variant (stealing x's buffer) agrees too.
        let inplace = run_ew_inplace(&prog, x.clone(), 0, &[None, Some(&y), Some(&s)]).unwrap();
        assert_eq!(inplace.data(), expect.data());

        // A volume that is not a multiple of the 8-wide lane exercises
        // the executor's scalar tail.
        let x2 =
            Tensor::from_vec((0..21).map(|i| (i as f32 * 0.53).sin()).collect(), &[3, 7]).unwrap();
        let y2 =
            Tensor::from_vec((0..21).map(|i| (i as f32 * 0.29).cos()).collect(), &[3, 7]).unwrap();
        let fused2 = run_ew(&prog, &[&x2, &y2, &s], &[3, 7]).unwrap();
        let expect2 = ops::tanh(
            &ops::div(&ops::add(&ops::mul(&x2, &y2).unwrap(), &x2).unwrap(), &s).unwrap(),
        );
        assert_eq!(fused2.data(), expect2.data(), "lane tail must be bit-identical");
    }

    /// Under the opt-in fast-math tier the chain executor's Tanh /
    /// Sigmoid / Exp lanes switch to the polynomial kernels — and must
    /// still be bit-identical to the *separate* tier-2 ops (fusion
    /// never changes results within a tier), including the in-place
    /// variant and the scalar lane tail.
    #[test]
    fn run_ew_matches_separate_ops_under_fastmath() {
        par::with_tier_level(2, || {
            let x =
                Tensor::from_vec((0..21).map(|i| (i as f32 * 0.43).sin() * 3.0).collect(), &[3, 7])
                    .unwrap();
            let y =
                Tensor::from_vec((0..21).map(|i| (i as f32 * 0.19).cos() * 2.0).collect(), &[3, 7])
                    .unwrap();
            let prog = EwProgram {
                insts: vec![
                    EwInst::Mul(EwSrc::Ext(0), EwSrc::Ext(1)),
                    EwInst::Tanh(EwSrc::Reg(0)),
                    EwInst::Sigmoid(EwSrc::Reg(1)),
                    EwInst::Exp(EwSrc::Reg(2)),
                ],
            };
            let fused = run_ew(&prog, &[&x, &y], &[3, 7]).unwrap();
            let expect = ops::exp(&ops::sigmoid(&ops::tanh(&ops::mul(&x, &y).unwrap())));
            assert_eq!(fused.data(), expect.data(), "fast-math chain matches separate fast ops");
            let inplace = run_ew_inplace(&prog, x.clone(), 0, &[None, Some(&y)]).unwrap();
            assert_eq!(inplace.data(), expect.data());
            // And it genuinely differs from the libm tier on this input
            // (guards against the gate being wired to the wrong level).
            let libm = par::with_tier(true, || {
                ops::exp(&ops::sigmoid(&ops::tanh(&ops::mul(&x, &y).unwrap())))
            });
            assert_ne!(fused.data(), libm.data(), "tier 2 must actually engage");
        });
    }

    #[test]
    fn cross_level_steal_offers_released_donors_only() {
        let ctx = TraceCtx::new();
        let x = ctx.input("x", &[16, 16]);
        let w = ctx.param("w", &[16, 16]);
        let p = x.matmul(&w);
        let a = p.square().tanh();
        let b = a.sum_all();
        let y0 = x.tanh();
        let c = y0.mul(&b).tanh();
        let graph = ctx.finish();
        let ids: Vec<NodeId> = (0..graph.len()).collect();
        // x, w, y0 kept: the only dying volume-256 buffers are p and a.
        let plan =
            compile(&graph, &ids, &[], Some(&[c.id(), y0.id(), x.id(), w.id()]), true).unwrap();
        // The a-chain consumes p in place, so p's buffer never reaches
        // release and must not be offered; a dies feeding sum_all one
        // level before the final chain, so it is the donor.
        let a_op = pure_ops(&plan).into_iter().find(|op| op.id == a.id()).unwrap();
        assert!(a_op.inplace.is_some(), "premise: a-chain steals p in place");
        let c_op = pure_ops(&plan).into_iter().find(|op| op.id == c.id()).unwrap();
        assert!(c_op.inplace.is_none(), "premise: final chain has no in-level donor");
        assert_eq!(plan.donors, HashMap::from([(a.id(), c.id())]));
        // Fusion off: no chains, no steals.
        let plain =
            compile(&graph, &ids, &[], Some(&[c.id(), y0.id(), x.id(), w.id()]), false).unwrap();
        assert!(plain.donors.is_empty());
    }

    #[test]
    fn cross_level_steals_chain_through_successive_stealers() {
        // One physical buffer should flow p -> a (in place) -> c
        // (cross-level) -> e (cross-level): each stealer's output dies
        // strictly before the next stealer's level, so it re-enters the
        // donor pool and the chain keeps extending instead of stopping
        // after the first hop.
        let ctx = TraceCtx::new();
        let x = ctx.input("x", &[16, 16]);
        let w = ctx.param("w", &[16, 16]);
        let p = x.matmul(&w);
        let a = p.square().tanh();
        let b = a.sum_all();
        let y0 = x.tanh();
        let c = y0.mul(&b).tanh();
        let d = c.sum_all();
        let y1 = x.relu();
        let e = y1.mul(&d).tanh();
        let graph = ctx.finish();
        let ids: Vec<NodeId> = (0..graph.len()).collect();
        let outs = [e.id(), y0.id(), y1.id(), x.id(), w.id()];
        let plan = compile(&graph, &ids, &[], Some(&outs), true).unwrap();
        let a_op = pure_ops(&plan).into_iter().find(|op| op.id == a.id()).unwrap();
        assert!(a_op.inplace.is_some(), "premise: a-chain steals p in place");
        for id in [c.id(), e.id()] {
            let op = pure_ops(&plan).into_iter().find(|op| op.id == id).unwrap();
            assert!(op.inplace.is_none(), "premise: later chains have no in-level donor");
        }
        // a dies feeding the first sum_all, c dies feeding the second:
        // both re-donate, forming the chain {a -> c, c -> e}.
        assert_eq!(plan.donors, HashMap::from([(a.id(), c.id()), (c.id(), e.id())]));
        // Fusion off: no chains, no steals.
        let plain = compile(&graph, &ids, &[], Some(&outs), false).unwrap();
        assert!(plain.donors.is_empty());
    }

    #[test]
    fn out_of_graph_ids_require_presets() {
        let ctx = TraceCtx::new();
        let x = ctx.input("x", &[4]);
        let _y = x.relu();
        let graph = ctx.finish();
        let bogus = graph.len() + 5;
        let err = compile(&graph, &[0, 1, bogus], &[], None, true).unwrap_err();
        assert!(matches!(err, FdgError::UnknownNode { id } if id == bogus));
        assert!(compile(&graph, &[0, 1, bogus], &[bogus], None, true).is_ok());
    }
}
