//! FDG generation — the paper's Algorithm 2.
//!
//! Given a dataflow graph with partition annotations, [`build_fdg`]:
//!
//! 1. parses the annotations and labels their data nodes as *common
//!    nodes*;
//! 2. splits the graph at the common nodes: treating common nodes as
//!    walls, every connected region of the remaining nodes becomes one
//!    fragment;
//! 3. duplicates each common node into every adjacent fragment and
//!    removes the consumed subgraph from further search (our region
//!    construction visits each interior node exactly once, which is the
//!    same guarantee);
//! 4. synthesises the communication interfaces: a fragment containing a
//!    common node's producers gets an *exit* bound to the annotated
//!    collective; fragments containing its consumers get an *entry*.
//!
//! When the user provides no annotations, the graph is partitioned along
//! algorithmic-component boundaries instead, with `SendRecv` interfaces on
//! every crossing edge (§4.3, final paragraph).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::annotate::{Collective, FragmentKind, PartitionAnnotation};
use crate::fragment::{Fragment, FragmentId, Interface};
use crate::graph::{DataflowGraph, DeviceReq, NodeId};
use crate::Result;

/// A fragmented dataflow graph: the original graph plus its fragments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fdg {
    /// The unpartitioned dataflow graph.
    pub graph: DataflowGraph,
    /// The fragments produced by Algorithm 2.
    pub fragments: Vec<Fragment>,
}

impl Fdg {
    /// The fragment computing the given interior node, if any.
    pub fn fragment_of(&self, node: NodeId) -> Option<FragmentId> {
        self.fragments.iter().find(|f| f.interior.contains(&node)).map(|f| f.id)
    }

    /// Fragments whose boundary duplicates the given common node.
    pub fn fragments_sharing(&self, node: NodeId) -> Vec<FragmentId> {
        self.fragments.iter().filter(|f| f.boundary.contains(&node)).map(|f| f.id).collect()
    }

    /// Validates the partition invariants:
    /// every node is interior to at most one fragment; every non-common
    /// node is interior to exactly one; common nodes appear on at least
    /// one boundary.
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        let n = self.graph.len();
        let common = self.graph.common_nodes();
        let mut owner = vec![0usize; n];
        for f in &self.fragments {
            for &i in &f.interior {
                owner[i] += 1;
            }
        }
        for (id, &owned) in owner.iter().enumerate() {
            let is_common = common.contains(&id);
            match (is_common, owned) {
                (false, 1) => {}
                (false, c) => {
                    return Err(format!("node {id} interior to {c} fragments, expected 1"))
                }
                (true, 0) => {}
                (true, c) => return Err(format!("common node {id} interior to {c} fragments")),
            }
        }
        for &c in &common {
            if self.fragments_sharing(c).is_empty() {
                return Err(format!("common node {c} on no fragment boundary"));
            }
        }
        Ok(())
    }
}

/// Runs Algorithm 2 on a traced graph.
///
/// # Errors
///
/// Returns an error when the graph fails validation (dangling edges,
/// cycles, empty annotations).
pub fn build_fdg(graph: DataflowGraph) -> Result<Fdg> {
    graph.validate()?;
    if graph.annotations.is_empty() {
        build_default(graph)
    } else {
        build_annotated(graph)
    }
}

/// Which annotation governs each common node (first one naming it wins —
/// tracing order matches the paper's source order).
fn annotation_of(graph: &DataflowGraph) -> HashMap<NodeId, PartitionAnnotation> {
    let mut map = HashMap::new();
    for a in &graph.annotations {
        for &d in &a.data {
            map.entry(d).or_insert_with(|| a.clone());
        }
    }
    map
}

fn undirected_adjacency(graph: &DataflowGraph) -> Vec<Vec<NodeId>> {
    let mut adj = vec![Vec::new(); graph.len()];
    for n in &graph.nodes {
        for &i in &n.inputs {
            adj[n.id].push(i);
            adj[i].push(n.id);
        }
    }
    adj
}

fn build_annotated(graph: DataflowGraph) -> Result<Fdg> {
    let ann = annotation_of(&graph);
    let is_common: Vec<bool> = (0..graph.len()).map(|i| ann.contains_key(&i)).collect();
    let adj = undirected_adjacency(&graph);

    // Regions: connected components of non-common nodes.
    let mut region = vec![usize::MAX; graph.len()];
    let mut n_regions = 0;
    for start in 0..graph.len() {
        if is_common[start] || region[start] != usize::MAX {
            continue;
        }
        let r = n_regions;
        n_regions += 1;
        let mut stack = vec![start];
        region[start] = r;
        while let Some(u) = stack.pop() {
            for &v in &adj[u] {
                if !is_common[v] && region[v] == usize::MAX {
                    region[v] = r;
                    stack.push(v);
                }
            }
        }
    }

    let consumers = graph.consumers();
    let mut fragments: Vec<Fragment> = (0..n_regions)
        .map(|r| Fragment {
            id: FragmentId(r),
            kind: FragmentKind::Custom(String::new()),
            interior: Vec::new(),
            boundary: Vec::new(),
            entries: Vec::new(),
            exits: Vec::new(),
            device_req: DeviceReq::Any,
        })
        .collect();
    for n in &graph.nodes {
        if !is_common[n.id] {
            let f = &mut fragments[region[n.id]];
            f.interior.push(n.id);
            f.device_req = f.device_req.merge(n.device_req);
        }
    }

    // Duplicate common nodes into adjacent fragments and wire interfaces.
    // Producers resolve *transitively* through chains of common nodes:
    // when two annotations are adjacent (consecutive common nodes), the
    // downstream common node is still computed by the fragment owning its
    // nearest non-common ancestor, with the intermediate common nodes
    // duplicated alongside it.
    let producer_regions_of = |c: NodeId| -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack: Vec<NodeId> = graph.nodes[c].inputs.clone();
        let mut seen = vec![false; graph.len()];
        while let Some(u) = stack.pop() {
            if seen[u] {
                continue;
            }
            seen[u] = true;
            if is_common[u] {
                stack.extend(graph.nodes[u].inputs.iter().copied());
            } else {
                out.push(region[u]);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    };
    for (&c, a) in &ann {
        let producer_regions: Vec<usize> = producer_regions_of(c);
        let consumer_regions: Vec<usize> =
            consumers[c].iter().filter(|&&i| !is_common[i]).map(|&i| region[i]).collect();
        let mut touched: Vec<usize> =
            producer_regions.iter().chain(consumer_regions.iter()).copied().collect();
        touched.sort_unstable();
        touched.dedup();
        if touched.is_empty() && !fragments.is_empty() {
            // Isolated sync point (e.g. a parameter-sync node whose
            // producers are all common): attach to the first fragment.
            touched.push(0);
        }
        for r in touched {
            let f = &mut fragments[r];
            f.boundary.push(c);
            let iface = Interface { node: c, collective: a.collective };
            if producer_regions.contains(&r) {
                f.exits.push(iface);
            } else {
                f.entries.push(iface);
            }
        }
    }

    // Fragment kinds: the annotation kind of the first exit, falling back
    // to the dominant component label.
    for f in &mut fragments {
        f.interior.sort_unstable();
        f.boundary.sort_unstable();
        f.boundary.dedup();
        f.entries.sort_by_key(|i| i.node);
        f.exits.sort_by_key(|i| i.node);
        f.kind = f
            .exits
            .first()
            .or(f.entries.first())
            .and_then(|i| ann.get(&i.node))
            .map(|a| a.kind.clone())
            .unwrap_or_else(|| FragmentKind::Custom(dominant_component(&graph, &f.interior)));
    }

    Ok(Fdg { graph, fragments })
}

fn dominant_component(graph: &DataflowGraph, nodes: &[NodeId]) -> String {
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for &i in nodes {
        *counts.entry(graph.nodes[i].component.as_str()).or_default() += 1;
    }
    counts
        .into_iter()
        .max_by_key(|&(name, c)| (c, std::cmp::Reverse(name.to_string())))
        .map(|(name, _)| name.to_string())
        .unwrap_or_default()
}

/// Default partitioning along algorithmic components: each distinct
/// component label is one fragment; edges crossing components become
/// `SendRecv` interfaces on the producing node.
fn build_default(graph: DataflowGraph) -> Result<Fdg> {
    let mut comp_ids: Vec<String> = Vec::new();
    let mut frag_of = vec![0usize; graph.len()];
    for n in &graph.nodes {
        let idx = match comp_ids.iter().position(|c| c == &n.component) {
            Some(i) => i,
            None => {
                comp_ids.push(n.component.clone());
                comp_ids.len() - 1
            }
        };
        frag_of[n.id] = idx;
    }
    let mut fragments: Vec<Fragment> = comp_ids
        .iter()
        .enumerate()
        .map(|(i, name)| Fragment {
            id: FragmentId(i),
            kind: FragmentKind::Custom(name.clone()),
            interior: Vec::new(),
            boundary: Vec::new(),
            entries: Vec::new(),
            exits: Vec::new(),
            device_req: DeviceReq::Any,
        })
        .collect();
    for n in &graph.nodes {
        let f = &mut fragments[frag_of[n.id]];
        f.interior.push(n.id);
        f.device_req = f.device_req.merge(n.device_req);
    }
    // Crossing edges become interfaces.
    for n in &graph.nodes {
        for &i in &n.inputs {
            let (pf, cf) = (frag_of[i], frag_of[n.id]);
            if pf != cf {
                let exit = Interface { node: i, collective: Collective::SendRecv };
                if !fragments[pf].exits.contains(&exit) {
                    fragments[pf].exits.push(exit.clone());
                }
                if !fragments[cf].entries.contains(&exit) {
                    fragments[cf].entries.push(exit);
                    fragments[cf].boundary.push(i);
                }
            }
        }
    }
    for f in &mut fragments {
        f.interior.sort_unstable();
        f.boundary.sort_unstable();
        f.boundary.dedup();
        f.entries.sort_by_key(|i| i.node);
        f.exits.sort_by_key(|i| i.node);
    }
    Ok(Fdg { graph, fragments })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::OpKind;
    use crate::trace::TraceCtx;

    /// The paper's Fig. 5 example: a learner-side graph split at the
    /// replay-buffer sample and parameter nodes.
    fn fig5_like() -> DataflowGraph {
        let ctx = TraceCtx::new();
        let saved = ctx.enter_component("trainer");
        let insert =
            ctx.replay_insert(&[&ctx.input("reward", &[32]), &ctx.input("state", &[32, 4])]);
        let sample = ctx.replay_sample(&insert, 32, 8);
        ctx.annotate(FragmentKind::Buffer, Collective::AllGather, &[&sample]);
        ctx.exit_component(saved);
        let saved = ctx.enter_component("learner");
        let loss = ctx.learn(&sample);
        let params = ctx.read_params(&loss, 100);
        ctx.annotate(FragmentKind::Learner, Collective::AllGather, &[&params]);
        ctx.exit_component(saved);
        ctx.finish()
    }

    #[test]
    fn fig5_splits_into_two_fragments() {
        let fdg = build_fdg(fig5_like()).unwrap();
        assert_eq!(fdg.fragments.len(), 2, "{:#?}", fdg.fragments);
        fdg.check_invariants().unwrap();
        // The sample node is shared between both fragments (duplicated).
        let sample_id = fdg.graph.nodes.iter().find(|n| n.kind == OpKind::ReplaySample).unwrap().id;
        assert_eq!(fdg.fragments_sharing(sample_id).len(), 2);
    }

    #[test]
    fn fig5_interfaces_have_directions() {
        let fdg = build_fdg(fig5_like()).unwrap();
        let sample_id = fdg.graph.nodes.iter().find(|n| n.kind == OpKind::ReplaySample).unwrap().id;
        // Producer-side fragment exits the sample; consumer-side enters it.
        let mut exits = 0;
        let mut entries = 0;
        for f in &fdg.fragments {
            exits += f.exits.iter().filter(|i| i.node == sample_id).count();
            entries += f.entries.iter().filter(|i| i.node == sample_id).count();
        }
        assert_eq!(exits, 1);
        assert_eq!(entries, 1);
    }

    #[test]
    fn learner_fragment_gets_annotation_kind() {
        let fdg = build_fdg(fig5_like()).unwrap();
        let kinds: Vec<_> = fdg.fragments.iter().map(|f| f.kind.clone()).collect();
        assert!(kinds.contains(&FragmentKind::Buffer), "{kinds:?}");
        assert!(kinds.contains(&FragmentKind::Learner), "{kinds:?}");
    }

    #[test]
    fn no_annotations_partitions_by_component() {
        let ctx = TraceCtx::new();
        let saved = ctx.enter_component("actor");
        let x = ctx.input("obs", &[4]);
        let act = x.relu();
        ctx.exit_component(saved);
        let saved = ctx.enter_component("learner");
        let _loss = act.square().sum_all();
        ctx.exit_component(saved);
        let fdg = build_fdg(ctx.finish()).unwrap();
        assert_eq!(fdg.fragments.len(), 2);
        fdg.check_invariants().unwrap();
        // The crossing value uses SendRecv.
        let actor = &fdg.fragments[0];
        assert_eq!(actor.exits.len(), 1);
        assert_eq!(actor.exits[0].collective, Collective::SendRecv);
        let learner = &fdg.fragments[1];
        assert_eq!(learner.entries.len(), 1);
        assert_eq!(learner.entries[0].node, actor.exits[0].node);
    }

    #[test]
    fn single_component_no_annotations_is_one_fragment() {
        let ctx = TraceCtx::new();
        let x = ctx.input("x", &[4]);
        let _ = x.relu().square().sum_all();
        let fdg = build_fdg(ctx.finish()).unwrap();
        assert_eq!(fdg.fragments.len(), 1);
        assert!(fdg.fragments[0].entries.is_empty());
        assert!(fdg.fragments[0].exits.is_empty());
    }

    #[test]
    fn device_requirements_propagate_to_fragments() {
        let ctx = TraceCtx::new();
        let saved = ctx.enter_component("env");
        let obs = ctx.env_reset(8, 4);
        ctx.exit_component(saved);
        let saved = ctx.enter_component("policy");
        let _y = obs.relu();
        ctx.exit_component(saved);
        let fdg = build_fdg(ctx.finish()).unwrap();
        let env_frag =
            fdg.fragments.iter().find(|f| f.kind == FragmentKind::Custom("env".into())).unwrap();
        assert_eq!(env_frag.device_req, DeviceReq::CpuOnly);
        let policy_frag =
            fdg.fragments.iter().find(|f| f.kind == FragmentKind::Custom("policy".into())).unwrap();
        assert_eq!(policy_frag.device_req, DeviceReq::Any);
    }

    #[test]
    fn invariants_catch_broken_partition() {
        let fdg = build_fdg(fig5_like()).unwrap();
        let mut broken = fdg.clone();
        // Steal a node into a second fragment's interior.
        let stolen = broken.fragments[0].interior[0];
        broken.fragments[1].interior.push(stolen);
        assert!(broken.check_invariants().is_err());
    }

    #[test]
    fn annotation_on_leaf_param_sync_is_exit() {
        // A weight-sync exit with no downstream consumer must still be an
        // exit on the producing fragment (Alg. 1 line 34).
        let fdg = build_fdg(fig5_like()).unwrap();
        let params_id = fdg.graph.nodes.iter().find(|n| n.kind == OpKind::ReadParams).unwrap().id;
        let learner = fdg.fragments.iter().find(|f| f.kind == FragmentKind::Learner).unwrap();
        assert!(learner.exits.iter().any(|i| i.node == params_id));
    }
}
