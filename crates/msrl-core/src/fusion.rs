//! Fragment fusion (§5.2 of the paper).
//!
//! When multiple replicas of a data-parallel fragment land on one device,
//! running each as its own stream costs kernel-launch overhead and extra
//! host↔device copies. MSRL instead *fuses* them: tensors from the N
//! replicas are batched along a leading axis, so one batched operator
//! processes all replicas SIMD-style.
//!
//! [`fuse_graph`] performs the shape rewrite: every data tensor's leading
//! dimension is multiplied by the replica count, while parameters stay
//! shared (data parallelism replicates data, not weights). Fusion is only
//! valid for *row-parallel* graphs — element-wise ops, `MatMul` with
//! shared right-hand parameters, row-wise softmax — and
//! [`fusible`] rejects graphs containing whole-tensor reductions, whose
//! fused result would mix replicas.

use crate::graph::{DataflowGraph, OpKind};
use crate::{FdgError, Result};

/// Whether a graph is safe to fuse: no op mixes rows across the batch.
pub fn fusible(graph: &DataflowGraph) -> bool {
    graph.nodes.iter().all(|n| {
        !matches!(
            n.kind,
            OpKind::SumAll | OpKind::MeanAll | OpKind::Reshape { .. } | OpKind::SumAxis { axis: 0 }
        )
    })
}

/// Produces the fused version of a data-parallel graph for `replicas`
/// co-located instances: leading dimensions of data tensors scale by the
/// replica count; parameters and constants stay shared.
///
/// # Errors
///
/// Returns [`FdgError::InvalidFusion`] for zero replicas or a graph that
/// is not row-parallel.
pub fn fuse_graph(graph: &DataflowGraph, replicas: usize) -> Result<DataflowGraph> {
    if replicas == 0 {
        return Err(FdgError::InvalidFusion { replicas });
    }
    if !fusible(graph) {
        return Err(FdgError::InvalidFusion { replicas });
    }
    let mut fused = graph.clone();
    for n in &mut fused.nodes {
        let shared = matches!(n.kind, OpKind::Param { .. } | OpKind::Const);
        if !shared && !n.shape.is_empty() {
            n.shape[0] *= replicas;
        }
    }
    Ok(fused)
}

/// The kernel-launch count saved by fusing `replicas` instances of a
/// graph: each non-source node is one launch per replica before fusion
/// and one launch total after (the §5.2 CUDA-streams overhead argument).
pub fn launches_saved(graph: &DataflowGraph, replicas: usize) -> usize {
    let launches: usize = graph
        .nodes
        .iter()
        .filter(|n| !matches!(n.kind, OpKind::Input { .. } | OpKind::Param { .. } | OpKind::Const))
        .count();
    launches * replicas.saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;
    use crate::trace::{trace_mlp, TraceCtx};
    use msrl_tensor::{ops, Tensor};

    fn inference_graph() -> (DataflowGraph, usize) {
        let ctx = TraceCtx::new();
        let x = ctx.input("x", &[4, 3]);
        let out = trace_mlp(&ctx, "pi", &x, &[3, 5, 2]);
        (ctx.finish(), out.id())
    }

    #[test]
    fn fuse_scales_data_not_params() {
        let (g, _) = inference_graph();
        let fused = fuse_graph(&g, 8).unwrap();
        for (orig, new) in g.nodes.iter().zip(&fused.nodes) {
            match &orig.kind {
                OpKind::Param { .. } | OpKind::Const => assert_eq!(orig.shape, new.shape),
                _ if !orig.shape.is_empty() => {
                    assert_eq!(new.shape[0], orig.shape[0] * 8);
                    assert_eq!(&new.shape[1..], &orig.shape[1..]);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn fuse_rejects_zero_and_reductions() {
        let (g, _) = inference_graph();
        assert!(matches!(fuse_graph(&g, 0), Err(FdgError::InvalidFusion { .. })));
        let ctx = TraceCtx::new();
        let x = ctx.input("x", &[4]);
        let _s = x.sum_all();
        let g2 = ctx.finish();
        assert!(!fusible(&g2));
        assert!(fuse_graph(&g2, 2).is_err());
    }

    /// The semantic core of §5.2: executing the fused graph on stacked
    /// replica inputs equals stacking the replicas' individual outputs.
    #[test]
    fn fused_execution_equals_stacked_replicas() {
        let (g, out_id) = inference_graph();
        let fused = fuse_graph(&g, 3).unwrap();

        let params: Vec<(&str, Tensor)> = vec![
            (
                "pi.w0",
                Tensor::from_vec((0..15).map(|i| 0.01 * i as f32).collect(), &[3, 5]).unwrap(),
            ),
            ("pi.b0", Tensor::full(&[5], 0.1)),
            (
                "pi.w1",
                Tensor::from_vec((0..10).map(|i| -0.02 * i as f32).collect(), &[5, 2]).unwrap(),
            ),
            ("pi.b1", Tensor::zeros(&[2])),
        ];
        let replica_inputs: Vec<Tensor> = (0..3)
            .map(|r| {
                Tensor::from_vec((0..12).map(|i| (r * 12 + i) as f32 * 0.05).collect(), &[4, 3])
                    .unwrap()
            })
            .collect();

        // Per-replica execution.
        let mut separate = Vec::new();
        for x in &replica_inputs {
            let mut interp = Interpreter::new();
            for (k, v) in &params {
                interp.bind_param(k, v.clone());
            }
            interp.bind_input("x", x.clone());
            separate.push(interp.eval(&g).unwrap()[out_id].clone());
        }
        let refs: Vec<&Tensor> = separate.iter().collect();
        let stacked = ops::concat(&refs, 0).unwrap();

        // Fused execution on the batched input.
        let input_refs: Vec<&Tensor> = replica_inputs.iter().collect();
        let batched = ops::concat(&input_refs, 0).unwrap();
        let mut interp = Interpreter::new();
        for (k, v) in &params {
            interp.bind_param(k, v.clone());
        }
        interp.bind_input("x", batched);
        let fused_out = interp.eval(&fused).unwrap()[out_id].clone();

        assert_eq!(fused_out.shape(), stacked.shape());
        for (a, b) in fused_out.data().iter().zip(stacked.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn launches_saved_counts_compute_nodes() {
        let (g, _) = inference_graph();
        // 3 layers ⇒ w·x (2 matmul) + adds (2) + tanh (1) = 5 compute
        // nodes for [3,5,2]: matmul, add, tanh, matmul, add.
        assert_eq!(launches_saved(&g, 1), 0);
        assert_eq!(launches_saved(&g, 4), 5 * 3);
    }
}
