//! The dataflow graph: nodes, operators and device requirements.

use serde::{Deserialize, Serialize};

use crate::annotate::PartitionAnnotation;
use crate::{FdgError, Result};

/// Index of a node within a [`DataflowGraph`].
pub type NodeId = usize;

/// What hardware a node's implementation needs (§4.1: "depending on how a
/// fragment's code is implemented, fragments require specific hardware
/// resources").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceReq {
    /// Runs anywhere (pure dataflow operators; a DL engine can compile
    /// them for GPU, or they interpret on CPU).
    Any,
    /// Requires a CPU (native host code, e.g. a non-batched environment).
    CpuOnly,
    /// Requires a GPU-class device (e.g. a fused batched environment
    /// kernel written for the device).
    GpuOnly,
}

impl DeviceReq {
    /// Combines requirements of two nodes placed in one fragment.
    ///
    /// `CpuOnly` and `GpuOnly` in one fragment is a placement conflict;
    /// the stricter requirement wins and validation reports it separately.
    pub fn merge(self, other: DeviceReq) -> DeviceReq {
        use DeviceReq::*;
        match (self, other) {
            (Any, x) | (x, Any) => x,
            (CpuOnly, CpuOnly) => CpuOnly,
            (GpuOnly, GpuOnly) => GpuOnly,
            // Conflict: be conservative, pin to CPU (always exists).
            _ => CpuOnly,
        }
    }
}

/// The operator set.
///
/// Compute ops map one-to-one onto `msrl-tensor` operators — the "DL
/// engine operators" of §5.1. Macro ops are the stateful RL interactions
/// of the paper's interaction API (environment stepping, replay buffers,
/// learning); their implementations are *kernels* registered with the
/// interpreter, which is how the original system binds `MSRL.env_step()`
/// et al. to component code.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OpKind {
    // -- sources ---------------------------------------------------------
    /// External input fed at execution time.
    Input {
        /// Binding name.
        name: String,
    },
    /// A trainable parameter tensor.
    Param {
        /// Parameter name.
        name: String,
    },
    /// An embedded constant.
    Const,
    /// Identity: a pure data node. Boundaries annotate identity nodes so
    /// the producing op stays interior to its fragment (the paper's
    /// Fig. 5 separates op nodes from data nodes at fragment boundaries).
    Identity,

    // -- compute operators ------------------------------------------------
    /// Matrix multiply.
    MatMul,
    /// Element-wise add (broadcasting).
    Add,
    /// Element-wise subtract (broadcasting).
    Sub,
    /// Element-wise multiply (broadcasting).
    Mul,
    /// Element-wise divide (broadcasting).
    Div,
    /// ReLU activation.
    Relu,
    /// Tanh activation.
    Tanh,
    /// Sigmoid activation.
    Sigmoid,
    /// Element-wise exponential.
    Exp,
    /// Element-wise natural log.
    Ln,
    /// Element-wise square.
    Square,
    /// Negation.
    Neg,
    /// Clamp into `[lo, hi]`.
    Clamp {
        /// Lower bound.
        lo: f32,
        /// Upper bound.
        hi: f32,
    },
    /// Row-wise softmax.
    Softmax,
    /// Row-wise log-softmax.
    LogSoftmax,
    /// Sum of all elements.
    SumAll,
    /// Mean of all elements.
    MeanAll,
    /// Sum along an axis.
    SumAxis {
        /// Reduced axis.
        axis: usize,
    },
    /// Concatenate inputs along an axis.
    Concat {
        /// Concatenation axis.
        axis: usize,
    },
    /// Reshape to fixed dimensions.
    Reshape {
        /// Target shape.
        dims: Vec<usize>,
    },

    // -- RL macro ops (stateful kernels) ----------------------------------
    /// Reset the environment set; yields batched observations.
    EnvReset,
    /// Step the environment set with actions; yields (obs, rewards).
    EnvStep,
    /// Sample actions from a policy distribution given network output.
    SampleAction,
    /// Insert a transition batch into the replay buffer.
    ReplayInsert,
    /// Sample a training batch from the replay buffer.
    ReplaySample,
    /// Run the learner's update on a sampled batch; yields the loss.
    Learn,
    /// Read the current policy parameters (for weight synchronisation).
    ReadParams,
    /// Overwrite policy parameters from a synced tensor.
    WriteParams,
}

impl OpKind {
    /// The default device requirement for this op (§4.1: operator code is
    /// device-agnostic; native environment code is CPU-bound).
    pub fn default_device_req(&self) -> DeviceReq {
        match self {
            OpKind::EnvReset | OpKind::EnvStep => DeviceReq::CpuOnly,
            _ => DeviceReq::Any,
        }
    }

    /// Whether this is a stateful macro op needing a registered kernel.
    pub fn is_macro(&self) -> bool {
        matches!(
            self,
            OpKind::EnvReset
                | OpKind::EnvStep
                | OpKind::SampleAction
                | OpKind::ReplayInsert
                | OpKind::ReplaySample
                | OpKind::Learn
                | OpKind::ReadParams
                | OpKind::WriteParams
        )
    }

    /// A short display name.
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Input { .. } => "Input",
            OpKind::Param { .. } => "Param",
            OpKind::Const => "Const",
            OpKind::Identity => "Identity",
            OpKind::MatMul => "MatMul",
            OpKind::Add => "Add",
            OpKind::Sub => "Sub",
            OpKind::Mul => "Mul",
            OpKind::Div => "Div",
            OpKind::Relu => "Relu",
            OpKind::Tanh => "Tanh",
            OpKind::Sigmoid => "Sigmoid",
            OpKind::Exp => "Exp",
            OpKind::Ln => "Ln",
            OpKind::Square => "Square",
            OpKind::Neg => "Neg",
            OpKind::Clamp { .. } => "Clamp",
            OpKind::Softmax => "Softmax",
            OpKind::LogSoftmax => "LogSoftmax",
            OpKind::SumAll => "SumAll",
            OpKind::MeanAll => "MeanAll",
            OpKind::SumAxis { .. } => "SumAxis",
            OpKind::Concat { .. } => "Concat",
            OpKind::Reshape { .. } => "Reshape",
            OpKind::EnvReset => "EnvReset",
            OpKind::EnvStep => "EnvStep",
            OpKind::SampleAction => "SampleAction",
            OpKind::ReplayInsert => "ReplayInsert",
            OpKind::ReplaySample => "ReplaySample",
            OpKind::Learn => "Learn",
            OpKind::ReadParams => "ReadParams",
            OpKind::WriteParams => "WriteParams",
        }
    }
}

/// One node of the dataflow graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpNode {
    /// The node's id (its index in the graph).
    pub id: NodeId,
    /// The operator.
    pub kind: OpKind,
    /// Producer nodes, in argument order.
    pub inputs: Vec<NodeId>,
    /// Static output shape (empty vec = scalar; used by the fusion pass
    /// and the cost model).
    pub shape: Vec<usize>,
    /// Hardware requirement.
    pub device_req: DeviceReq,
    /// Which algorithmic component traced this node (actor/learner/…);
    /// used by the default partitioning when no annotations exist.
    pub component: String,
}

/// Process-wide source of plan-cache identities; 0 is never handed out
/// so a stamp of 0 can mean "unstamped" in debug output.
static NEXT_STAMP: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// A dataflow graph plus its partition annotations.
#[derive(Debug, Default)]
pub struct DataflowGraph {
    /// Nodes, indexed by [`NodeId`]. Tracing appends in topological
    /// order (inputs always precede consumers).
    pub nodes: Vec<OpNode>,
    /// Partition annotations collected during tracing.
    pub annotations: Vec<PartitionAnnotation>,
    /// Lazily-assigned process-unique identity used as the compiled-plan
    /// cache key (see [`crate::compile`]). Not part of the graph's
    /// value: excluded from serde, reset on clone, ignored by equality.
    stamp: std::sync::OnceLock<u64>,
}

// Hand-written so the stamp stays out of the wire format (the vendored
// serde shim has no `#[serde(skip)]`); layout matches what the derive
// produced before the stamp existed: `{"nodes": [...], "annotations":
// [...]}`. A deserialized graph is unstamped and gets a fresh identity
// on first use.
impl Serialize for DataflowGraph {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("nodes".to_string(), self.nodes.to_value()),
            ("annotations".to_string(), self.annotations.to_value()),
        ])
    }
}

impl Deserialize for DataflowGraph {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        Ok(DataflowGraph {
            nodes: Vec::<OpNode>::from_value(v.field("nodes")?)?,
            annotations: Vec::<PartitionAnnotation>::from_value(v.field("annotations")?)?,
            stamp: std::sync::OnceLock::new(),
        })
    }
}

impl Clone for DataflowGraph {
    fn clone(&self) -> Self {
        // A clone may be mutated independently, so it gets a fresh
        // plan-cache identity on first use.
        DataflowGraph {
            nodes: self.nodes.clone(),
            annotations: self.annotations.clone(),
            stamp: std::sync::OnceLock::new(),
        }
    }
}

impl PartialEq for DataflowGraph {
    fn eq(&self, other: &Self) -> bool {
        self.nodes == other.nodes && self.annotations == other.annotations
    }
}

impl DataflowGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DataflowGraph::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Appends a node and returns its id.
    pub fn push(
        &mut self,
        kind: OpKind,
        inputs: Vec<NodeId>,
        shape: Vec<usize>,
        component: &str,
    ) -> NodeId {
        let id = self.nodes.len();
        let device_req = kind.default_device_req();
        self.nodes.push(OpNode {
            id,
            kind,
            inputs,
            shape,
            device_req,
            component: component.to_string(),
        });
        id
    }

    /// The node with the given id.
    ///
    /// # Errors
    ///
    /// Returns [`FdgError::UnknownNode`] for out-of-range ids.
    pub fn node(&self, id: NodeId) -> Result<&OpNode> {
        self.nodes.get(id).ok_or(FdgError::UnknownNode { id })
    }

    /// This graph's process-unique plan-cache identity, assigned on
    /// first call. Two graphs never share a stamp (clones get fresh
    /// ones), so `(stamp, …)` keys compiled plans without hashing node
    /// contents. Mutating `nodes` after a plan has been cached is not
    /// supported — rebuild or clone the graph instead.
    pub fn stamp(&self) -> u64 {
        *self.stamp.get_or_init(|| NEXT_STAMP.fetch_add(1, std::sync::atomic::Ordering::Relaxed))
    }

    /// Consumers of each node (adjacency in the forward direction).
    pub fn consumers(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.nodes.len()];
        for n in &self.nodes {
            for &i in &n.inputs {
                if let Some(list) = out.get_mut(i) {
                    list.push(n.id);
                }
            }
        }
        out
    }

    /// Validates edges and acyclicity.
    ///
    /// Tracing builds nodes in topological order, so `inputs[i] < id`
    /// suffices; hand-built graphs violating it are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`FdgError::UnknownNode`] for dangling edges or
    /// [`FdgError::CyclicGraph`] for forward references.
    pub fn validate(&self) -> Result<()> {
        for n in &self.nodes {
            for &i in &n.inputs {
                if i >= self.nodes.len() {
                    return Err(FdgError::UnknownNode { id: i });
                }
                if i >= n.id {
                    return Err(FdgError::CyclicGraph);
                }
            }
        }
        for a in &self.annotations {
            if a.data.is_empty() {
                return Err(FdgError::EmptyAnnotation);
            }
            for &d in &a.data {
                if d >= self.nodes.len() {
                    return Err(FdgError::UnknownNode { id: d });
                }
            }
        }
        Ok(())
    }

    /// All node ids named by any annotation — the *common nodes* of §4.3.
    pub fn common_nodes(&self) -> Vec<NodeId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut out = Vec::new();
        for a in &self.annotations {
            for &d in &a.data {
                if d < seen.len() && !seen[d] {
                    seen[d] = true;
                    out.push(d);
                }
            }
        }
        out
    }

    /// Total bytes of the given nodes' outputs (f32 payloads).
    pub fn bytes_of(&self, ids: &[NodeId]) -> u64 {
        ids.iter()
            .filter_map(|&i| self.nodes.get(i))
            .map(|n| 4 * n.shape.iter().product::<usize>().max(1) as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::{Collective, FragmentKind};

    fn toy_graph() -> DataflowGraph {
        let mut g = DataflowGraph::new();
        let x = g.push(OpKind::Input { name: "x".into() }, vec![], vec![4], "actor");
        let w = g.push(OpKind::Param { name: "w".into() }, vec![], vec![4, 2], "actor");
        let h = g.push(OpKind::MatMul, vec![x, w], vec![2], "actor");
        let _y = g.push(OpKind::Tanh, vec![h], vec![2], "actor");
        g
    }

    #[test]
    fn push_assigns_sequential_ids() {
        let g = toy_graph();
        assert_eq!(g.len(), 4);
        assert_eq!(g.nodes[2].inputs, vec![0, 1]);
    }

    #[test]
    fn validate_accepts_topological_graph() {
        assert!(toy_graph().validate().is_ok());
    }

    #[test]
    fn validate_rejects_forward_edge() {
        let mut g = toy_graph();
        g.nodes[0].inputs = vec![3];
        assert_eq!(g.validate(), Err(FdgError::CyclicGraph));
    }

    #[test]
    fn validate_rejects_dangling_edge() {
        let mut g = toy_graph();
        g.nodes[2].inputs = vec![0, 99];
        assert_eq!(g.validate(), Err(FdgError::UnknownNode { id: 99 }));
    }

    #[test]
    fn consumers_are_forward_adjacency() {
        let g = toy_graph();
        let cons = g.consumers();
        assert_eq!(cons[0], vec![2]);
        assert_eq!(cons[2], vec![3]);
        assert!(cons[3].is_empty());
    }

    #[test]
    fn common_nodes_dedup_in_order() {
        let mut g = toy_graph();
        g.annotations.push(PartitionAnnotation {
            kind: FragmentKind::Action,
            collective: Collective::AllGather,
            data: vec![2, 3],
        });
        g.annotations.push(PartitionAnnotation {
            kind: FragmentKind::Step,
            collective: Collective::AllGather,
            data: vec![3],
        });
        assert_eq!(g.common_nodes(), vec![2, 3]);
    }

    #[test]
    fn stamp_is_stable_and_unique_per_graph() {
        let g = toy_graph();
        assert_eq!(g.stamp(), g.stamp());
        let clone = g.clone();
        assert_ne!(g.stamp(), clone.stamp(), "clones get fresh identities");
        assert_eq!(g, clone, "stamp is not part of graph equality");
    }

    #[test]
    fn env_ops_default_to_cpu() {
        assert_eq!(OpKind::EnvStep.default_device_req(), DeviceReq::CpuOnly);
        assert_eq!(OpKind::MatMul.default_device_req(), DeviceReq::Any);
    }

    #[test]
    fn device_req_merge() {
        use DeviceReq::*;
        assert_eq!(Any.merge(GpuOnly), GpuOnly);
        assert_eq!(CpuOnly.merge(Any), CpuOnly);
        assert_eq!(CpuOnly.merge(GpuOnly), CpuOnly, "conflict pins to CPU");
    }

    #[test]
    fn bytes_of_counts_f32_payloads() {
        let g = toy_graph();
        // x: 4 floats, h: 2 floats ⇒ 24 bytes.
        assert_eq!(g.bytes_of(&[0, 2]), 24);
        // Scalars count as one element.
        let mut g2 = DataflowGraph::new();
        let s = g2.push(OpKind::Const, vec![], vec![], "c");
        assert_eq!(g2.bytes_of(&[s]), 4);
    }
}
