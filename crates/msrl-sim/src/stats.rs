//! Statistical-efficiency models.
//!
//! Wall-clock "training time to reward R" experiments (Figs. 7a, 7c, 7d,
//! 8a/8c) couple two quantities: the time per episode (from the cluster
//! simulator) and the *number of episodes needed to reach the reward*.
//! The paper explains the second through batch-size effects: DP-C's
//! data-parallel learners each train a `1/p` slice of the batch, which
//! "adds randomness to the training and affects convergence speed"
//! (§7.2, citing Hoffer et al. [16]); more environments per episode mean
//! more data and fewer episodes (§7.4, Fig. 12).
//!
//! This module makes those explanations executable. The functional forms
//! are standard (logarithmic batch-size penalty, saturating returns from
//! extra data); the constants are calibrated so the reproduction exhibits
//! the paper's crossovers, and Fig. 12 validates the direction with real
//! end-to-end training.

/// Baseline episodes for PPO/HalfCheetah to reach the paper's reward
/// thresholds with the reference batch (320 envs, single learner).
pub const BASE_EPISODES: f64 = 300.0;

/// Episodes-to-reward for a single-learner policy (DP-A/DP-B): constant
/// in the worker count, improving with the amount of data per episode.
pub fn episodes_single_learner(n_envs: usize, reference_envs: usize) -> f64 {
    BASE_EPISODES * data_scale(n_envs, reference_envs)
}

/// Episodes-to-reward for data-parallel learners (DP-C): each learner
/// trains `samples_per_learner` transitions per episode, and small
/// per-learner batches pay a convergence penalty (more gradient noise
/// without the hyper-parameter retuning the paper notes DP-C needs).
///
/// The penalty is a power law in the inverse per-learner batch,
/// `1 + 0.57 · (12500 / B)^1.44`, calibrated jointly against the paper's
/// crossovers: DP-C wins at 16 GPUs and loses at 64 on the cloud cluster
/// (Fig. 8a), always loses on the local cluster (Fig. 8c), and wins at
/// low added latency with 50 learners × 400 envs (Fig. 7d).
pub fn episodes_multi_learner(
    n_envs: usize,
    reference_envs: usize,
    samples_per_learner: usize,
) -> f64 {
    let b = samples_per_learner.max(1) as f64;
    let penalty = 1.0 + 0.57 * (12_500.0 / b).powf(1.44);
    BASE_EPISODES * data_scale(n_envs, reference_envs) * penalty
}

/// Diminishing returns from more data per episode: doubling the
/// environments cuts episodes by a saturating factor (Fig. 12's
/// direction).
fn data_scale(n_envs: usize, reference_envs: usize) -> f64 {
    let ratio = n_envs.max(1) as f64 / reference_envs.max(1) as f64;
    // At the reference count the scale is 1; 2× the data ≈ 0.82× the
    // episodes; half the data ≈ 1.22×.
    ratio.powf(-0.28)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_point_is_base() {
        assert!((episodes_single_learner(320, 320) - BASE_EPISODES).abs() < 1e-9);
    }

    #[test]
    fn more_envs_fewer_episodes() {
        let few = episodes_single_learner(100, 320);
        let many = episodes_single_learner(600, 320);
        assert!(many < few);
        assert!(many < BASE_EPISODES);
        assert!(few > BASE_EPISODES);
    }

    #[test]
    fn multi_learner_penalty_grows_as_batches_shrink() {
        // 320 envs × 1000 steps split over p learners.
        let batch = |p: usize| 320 * 1000 / p;
        let one = episodes_multi_learner(320, 320, batch(1));
        let sixteen = episodes_multi_learner(320, 320, batch(16));
        let sixty_four = episodes_multi_learner(320, 320, batch(64));
        assert!(one < BASE_EPISODES * 1.05, "full batch ≈ no penalty");
        assert!(sixteen > one);
        assert!(sixty_four > sixteen);
        // Mild at 16 learners (paper: DP-C *wins* at 16 GPUs on the cloud
        // cluster), material at 64.
        assert!(sixteen / one < 1.5, "penalty at 16: {}", sixteen / one);
        assert!(sixty_four / one > 2.0, "penalty at 64: {}", sixty_four / one);
    }

    #[test]
    fn data_scale_is_saturating() {
        // Doubling from 320 to 640 helps less than doubling from 80 to 160
        // in absolute terms.
        let d1 = episodes_single_learner(80, 320) - episodes_single_learner(160, 320);
        let d2 = episodes_single_learner(320, 320) - episodes_single_learner(640, 320);
        assert!(d1 > d2);
    }
}
