//! Device throughput models.
//!
//! A device model prices a unit of graph work: `kernels` launches plus
//! `flops` of arithmetic. Sustained throughputs are set well below peak
//! (real RL workloads with small tensors reach a fraction of peak), and
//! kernel-launch overhead is the CUDA-stream cost §5.2 describes — it is
//! what fragment fusion eliminates.

use serde::{Deserialize, Serialize};

/// A compute device's cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceModel {
    /// Sustained f32 throughput, flops/second.
    pub flops_per_sec: f64,
    /// Fixed overhead per kernel launch, seconds.
    pub kernel_launch_s: f64,
    /// Host↔device copy cost, seconds per byte (0 for CPUs).
    pub copy_s_per_byte: f64,
}

impl DeviceModel {
    /// A P100-class GPU (the paper's cloud cluster): ~9.3 TFLOPS peak,
    /// modelled at ~2 TFLOPS sustained on RL-sized tensors.
    pub fn p100() -> Self {
        DeviceModel { flops_per_sec: 2.0e12, kernel_launch_s: 6e-6, copy_s_per_byte: 1.0 / 12.8e9 }
    }

    /// A V100-class GPU (the paper's local cluster): ~15.7 TFLOPS peak,
    /// modelled at ~4 TFLOPS sustained, faster launches, NVLink copies.
    pub fn v100() -> Self {
        DeviceModel { flops_per_sec: 4.0e12, kernel_launch_s: 4e-6, copy_s_per_byte: 1.0 / 150e9 }
    }

    /// One Xeon-class CPU core: ~25 GFLOPS sustained with SIMD; no
    /// launch overhead and no copies (host memory).
    pub fn cpu_core() -> Self {
        DeviceModel { flops_per_sec: 2.5e10, kernel_launch_s: 0.0, copy_s_per_byte: 0.0 }
    }

    /// Time to run `flops` of work in `kernels` launches.
    pub fn compute_time(&self, flops: u64, kernels: u64) -> f64 {
        kernels as f64 * self.kernel_launch_s + flops as f64 / self.flops_per_sec
    }

    /// Time to copy `bytes` between host and this device.
    pub fn copy_time(&self, bytes: u64) -> f64 {
        bytes as f64 * self.copy_s_per_byte
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_beats_cpu_on_large_work() {
        let flops = 10_000_000_000; // 10 GFLOP
        let gpu = DeviceModel::p100().compute_time(flops, 10);
        let cpu = DeviceModel::cpu_core().compute_time(flops, 10);
        assert!(gpu < cpu / 10.0, "gpu {gpu} vs cpu {cpu}");
    }

    #[test]
    fn cpu_beats_gpu_on_tiny_kernels() {
        // 1000 launches of 1k flops each: launch overhead dominates the
        // GPU; the CPU just computes.
        let gpu = DeviceModel::p100().compute_time(1_000_000, 1000);
        let cpu = DeviceModel::cpu_core().compute_time(1_000_000, 1000);
        assert!(cpu < gpu, "cpu {cpu} vs gpu {gpu}");
    }

    #[test]
    fn fusion_payoff_is_visible_in_the_model() {
        // N replicas unfused: N× the launches. Fused: same flops, 1× the
        // launches. The fused run must be strictly faster.
        let d = DeviceModel::v100();
        let per_replica_flops = 2_000_000;
        let kernels = 12;
        let n = 32;
        let unfused = d.compute_time(per_replica_flops * n, kernels * n);
        let fused = d.compute_time(per_replica_flops * n, kernels);
        assert!(fused < unfused);
        assert!(unfused - fused >= (n - 1) as f64 * kernels as f64 * d.kernel_launch_s * 0.99);
    }

    #[test]
    fn v100_faster_than_p100() {
        let flops = 1_000_000_000;
        assert!(
            DeviceModel::v100().compute_time(flops, 5) < DeviceModel::p100().compute_time(flops, 5)
        );
        assert!(DeviceModel::v100().copy_time(1 << 20) < DeviceModel::p100().copy_time(1 << 20));
    }
}
