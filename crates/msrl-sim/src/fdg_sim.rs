//! Simulating a *real* FDG under an explicit device assignment.
//!
//! The scenario models in [`crate::scenarios`] price the paper's
//! experiments from workload parameters. This module closes the loop the
//! other way: it takes an actual fragmented dataflow graph (as produced
//! by Algorithm 2 in `msrl-core`), an explicit fragment→device
//! assignment, and prices **one iteration of that FDG** on a modelled
//! cluster — fragment compute from the graph's own operator flop counts,
//! interface traffic from the graph's own payload byte counts, kernel
//! launches from the graph's own node counts.
//!
//! This is what lets a user ask "what would *my* partitioning cost on
//! the cloud cluster?" before running anything.

use std::collections::HashMap;

use msrl_comm::topology::{DeviceId, DeviceKind};
use msrl_core::cost::subgraph_flops;
use msrl_core::{DeviceReq, Fdg, FragmentId, OpKind};

use crate::device::DeviceModel;
use crate::engine::{Resource, TaskGraph};
use crate::scenarios::Cluster;

/// Errors from FDG simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum FdgSimError {
    /// A fragment has no device assignment.
    Unassigned(FragmentId),
    /// A CPU-only fragment (e.g. native environment code) was assigned
    /// to a GPU, or vice versa.
    DeviceMismatch {
        /// The offending fragment.
        fragment: FragmentId,
        /// Its requirement.
        requires: DeviceReq,
        /// The assigned device.
        device: DeviceId,
    },
}

impl std::fmt::Display for FdgSimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FdgSimError::Unassigned(id) => write!(f, "fragment {id:?} has no device"),
            FdgSimError::DeviceMismatch { fragment, requires, device } => {
                write!(f, "fragment {fragment:?} requires {requires:?} but is on {device}")
            }
        }
    }
}

impl std::error::Error for FdgSimError {}

/// Per-step cost hints the graph cannot know: the CPU seconds one
/// `EnvStep`/`EnvReset` kernel costs (environment implementations report
/// this via `Environment::step_cost`), and seconds per `Learn` node.
#[derive(Debug, Clone, Copy)]
pub struct KernelCosts {
    /// Seconds per environment macro node.
    pub env_step_s: f64,
    /// Seconds per learner macro node.
    pub learn_s: f64,
}

impl Default for KernelCosts {
    fn default() -> Self {
        KernelCosts { env_step_s: 1e-4, learn_s: 1e-2 }
    }
}

/// Validates an assignment against the fragments' device requirements.
///
/// # Errors
///
/// Returns the first unassigned or mis-assigned fragment.
pub fn validate_assignment(
    fdg: &Fdg,
    assignment: &HashMap<FragmentId, DeviceId>,
) -> Result<(), FdgSimError> {
    for frag in &fdg.fragments {
        let device = assignment.get(&frag.id).ok_or(FdgSimError::Unassigned(frag.id))?;
        let ok = match frag.device_req {
            DeviceReq::Any => true,
            DeviceReq::CpuOnly => device.kind == DeviceKind::Cpu,
            DeviceReq::GpuOnly => device.kind == DeviceKind::Gpu,
        };
        if !ok {
            return Err(FdgSimError::DeviceMismatch {
                fragment: frag.id,
                requires: frag.device_req,
                device: *device,
            });
        }
    }
    Ok(())
}

/// Prices one iteration of the FDG under the assignment: every fragment
/// becomes a task on its device (compute from its operator flops plus
/// kernel-cost hints), and every producer→consumer interface becomes a
/// transfer priced by the cluster's links. Returns the virtual makespan
/// in seconds.
///
/// # Errors
///
/// Returns an error for invalid assignments.
pub fn iteration_time(
    fdg: &Fdg,
    assignment: &HashMap<FragmentId, DeviceId>,
    cluster: &Cluster,
    kernels: KernelCosts,
) -> Result<f64, FdgSimError> {
    validate_assignment(fdg, assignment)?;
    let mut g = TaskGraph::new();
    // Fragments in id order; tracing makes producer fragments precede
    // consumers, so interface dependencies point backwards.
    let mut frag_task: HashMap<FragmentId, usize> = HashMap::new();
    let mut exit_owner: HashMap<usize, FragmentId> = HashMap::new();
    for f in &fdg.fragments {
        for e in &f.exits {
            exit_owner.insert(e.node, f.id);
        }
    }
    for f in &fdg.fragments {
        let device = assignment[&f.id];
        let nodes = f.all_nodes();
        let flops = subgraph_flops(&fdg.graph, &nodes);
        let (model, launches_cost) = match device.kind {
            DeviceKind::Gpu => {
                let launches = nodes
                    .iter()
                    .filter(|&&i| {
                        !matches!(
                            fdg.graph.nodes[i].kind,
                            OpKind::Input { .. } | OpKind::Param { .. } | OpKind::Const
                        )
                    })
                    .count() as u64;
                (cluster.gpu, launches)
            }
            DeviceKind::Cpu => (DeviceModel::cpu_core(), 0),
        };
        let mut duration = model.compute_time(flops, launches_cost);
        for &i in &nodes {
            match fdg.graph.nodes[i].kind {
                OpKind::EnvStep | OpKind::EnvReset => duration += kernels.env_step_s,
                OpKind::Learn => duration += kernels.learn_s,
                _ => {}
            }
        }
        // Dependencies: one transfer task per entry interface whose
        // producer fragment is already placed.
        let mut deps = Vec::new();
        for entry in &f.entries {
            if let Some(&producer) = exit_owner.get(&entry.node) {
                if let Some(&ptask) = frag_task.get(&producer) {
                    let bytes = fdg.graph.bytes_of(&[entry.node]);
                    let from = assignment[&producer];
                    let t = cluster.net.p2p_time(from, device, bytes);
                    let resource = if from.co_located(&device) {
                        Resource::None // intra-node copies do not contend
                    } else {
                        Resource::link(from.node, device.node)
                    };
                    let tid = g.add(format!("xfer->{}", entry.node), resource, t, &[ptask]);
                    deps.push(tid);
                }
            }
        }
        let tid = g.add(format!("frag{}", f.id.0), Resource::Device(device), duration, &deps);
        frag_task.insert(f.id, tid);
    }
    Ok(g.simulate().makespan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{cloud, local};
    use msrl_core::annotate::{Collective, FragmentKind};
    use msrl_core::partition::build_fdg;
    use msrl_core::trace::{trace_mlp, TraceCtx};

    /// A two-fragment FDG: a CPU-bound env fragment feeding a GPU-able
    /// policy fragment.
    fn env_policy_fdg() -> Fdg {
        let ctx = TraceCtx::new();
        let saved = ctx.enter_component("env");
        let obs = ctx.env_reset(64, 17).boundary();
        ctx.annotate(FragmentKind::Reset, Collective::SendRecv, &[&obs]);
        ctx.exit_component(saved);
        let saved = ctx.enter_component("policy");
        let _out = trace_mlp(&ctx, "pi", &obs, &[17, 64, 64, 6]);
        ctx.exit_component(saved);
        build_fdg(ctx.finish()).unwrap()
    }

    fn assign(fdg: &Fdg, devices: &[DeviceId]) -> HashMap<FragmentId, DeviceId> {
        fdg.fragments.iter().zip(devices).map(|(f, &d)| (f.id, d)).collect()
    }

    #[test]
    fn cpu_only_fragment_rejects_gpu_assignment() {
        let fdg = env_policy_fdg();
        let bad = assign(&fdg, &[DeviceId::gpu(0, 0), DeviceId::gpu(0, 1)]);
        let err = validate_assignment(&fdg, &bad).unwrap_err();
        assert!(matches!(err, FdgSimError::DeviceMismatch { .. }));
        let good = assign(&fdg, &[DeviceId::cpu(0, 0), DeviceId::gpu(0, 0)]);
        validate_assignment(&fdg, &good).unwrap();
    }

    #[test]
    fn missing_assignment_is_reported() {
        let fdg = env_policy_fdg();
        let partial: HashMap<_, _> =
            [(fdg.fragments[0].id, DeviceId::cpu(0, 0))].into_iter().collect();
        assert!(matches!(
            iteration_time(&fdg, &partial, &cloud(), KernelCosts::default()),
            Err(FdgSimError::Unassigned(_))
        ));
    }

    #[test]
    fn colocated_assignment_beats_remote() {
        let fdg = env_policy_fdg();
        let c = cloud();
        let k = KernelCosts::default();
        let colocated = assign(&fdg, &[DeviceId::cpu(0, 0), DeviceId::gpu(0, 0)]);
        let remote = assign(&fdg, &[DeviceId::cpu(0, 0), DeviceId::gpu(5, 0)]);
        let t_co = iteration_time(&fdg, &colocated, &c, k).unwrap();
        let t_rem = iteration_time(&fdg, &remote, &c, k).unwrap();
        assert!(t_co < t_rem, "co-location avoids the 10GbE hop: {t_co} vs {t_rem}");
    }

    #[test]
    fn faster_cluster_runs_the_same_fdg_faster() {
        let fdg = env_policy_fdg();
        let k = KernelCosts::default();
        let devices = [DeviceId::cpu(0, 0), DeviceId::gpu(1, 0)];
        let a = assign(&fdg, &devices);
        let t_cloud = iteration_time(&fdg, &a, &cloud(), k).unwrap();
        let t_local = iteration_time(&fdg, &a, &local(), k).unwrap();
        assert!(t_local < t_cloud, "{t_local} vs {t_cloud}");
    }

    #[test]
    fn learn_cost_hint_is_charged() {
        let ctx = TraceCtx::new();
        let saved = ctx.enter_component("learner");
        let sample = ctx.input("sample", &[128, 8]);
        let _loss = ctx.learn(&sample);
        ctx.exit_component(saved);
        let fdg = build_fdg(ctx.finish()).unwrap();
        let a = assign(&fdg, &[DeviceId::gpu(0, 0)]);
        let cheap =
            iteration_time(&fdg, &a, &cloud(), KernelCosts { env_step_s: 0.0, learn_s: 0.0 })
                .unwrap();
        let costly =
            iteration_time(&fdg, &a, &cloud(), KernelCosts { env_step_s: 0.0, learn_s: 0.5 })
                .unwrap();
        assert!((costly - cheap - 0.5).abs() < 1e-9);
    }
}
