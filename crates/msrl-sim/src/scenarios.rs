//! Workload models for the paper's experiments.
//!
//! Each function assembles the per-episode task structure of a training
//! configuration — which fragments run where under a given distribution
//! policy — and prices it on a modelled cluster. The cost inputs are the
//! ones the rest of the reproduction uses for real: FDG operator flops
//! (`msrl_core::cost`), α–β collective formulas (`msrl_comm::model`) and
//! device models ([`crate::device`]).
//!
//! Calibration constants (sustained small-tensor training throughput,
//! environment step cost, per-step actor overhead) are set once in
//! [`PpoWorkload::halfcheetah`] and shared by *all* figures, so a change
//! that fixes one figure's shape is forced to stay consistent with the
//! others.

use msrl_comm::model::NetworkModel;
use msrl_comm::topology::{cloud_cluster, local_cluster, ClusterSpec, DeviceId};

use crate::device::DeviceModel;
use crate::engine::{Resource, TaskGraph};
use crate::stats;

/// A modelled cluster: topology, fabric and GPU class.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Node/device inventory (Tab. 3).
    pub spec: ClusterSpec,
    /// Link models.
    pub net: NetworkModel,
    /// GPU device model.
    pub gpu: DeviceModel,
    /// Sustained throughput for the RL-sized (64-wide) training matmuls,
    /// flops/s. Far below peak, as is realistic for tiny tensors.
    pub train_flops_per_sec: f64,
}

/// The paper's cloud cluster: 16×4 P100 on PCIe + 10 GbE.
pub fn cloud() -> Cluster {
    Cluster {
        spec: cloud_cluster(),
        net: NetworkModel::cloud(),
        gpu: DeviceModel::p100(),
        train_flops_per_sec: 5.0e10,
    }
}

/// The paper's local cluster: 4×8 V100 on NVLink + 100 Gb InfiniBand.
pub fn local() -> Cluster {
    Cluster {
        spec: local_cluster(),
        net: NetworkModel::local(),
        gpu: DeviceModel::v100(),
        train_flops_per_sec: 3.0e11,
    }
}

impl Cluster {
    /// CPU cores available to each actor fragment (cores shared between
    /// the co-located GPUs of a node).
    pub fn cores_per_actor(&self) -> usize {
        (self.spec.node.cpu_cores / self.spec.node.gpus).max(1)
    }

    /// The node hosting the `i`-th GPU (node-major placement).
    pub fn gpu_node(&self, i: usize) -> usize {
        (i / self.spec.node.gpus).min(self.spec.nodes - 1)
    }

    /// Device ids for the first `p` GPUs (wrapping when `p` exceeds the
    /// cluster, modelling device sharing).
    pub fn gpus(&self, p: usize) -> Vec<DeviceId> {
        (0..p)
            .map(|i| {
                let i = i % self.spec.total_gpus().max(1);
                DeviceId::gpu(self.gpu_node(i), i % self.spec.node.gpus)
            })
            .collect()
    }
}

/// The PPO training workload of §7 (MuJoCo HalfCheetah, seven-layer DNN).
#[derive(Debug, Clone)]
pub struct PpoWorkload {
    /// Total environments across all actors.
    pub n_envs: usize,
    /// Steps per episode.
    pub episode_len: usize,
    /// Observation width.
    pub obs_dim: usize,
    /// Action width.
    pub act_dim: usize,
    /// Hidden width of the seven-layer policy.
    pub hidden: usize,
    /// CPU-seconds per environment step on one core.
    pub env_step_cost: f64,
    /// Fixed per-step actor overhead (process sync, host↔device copies),
    /// seconds.
    pub step_overhead: f64,
    /// PPO epochs per episode batch.
    pub train_epochs: usize,
}

impl PpoWorkload {
    /// The Fig. 7/8 configuration: HalfCheetah-class environments
    /// (≈0.8 ms/step), 1000-step episodes, seven-layer 64-wide policy.
    pub fn halfcheetah(n_envs: usize) -> Self {
        PpoWorkload {
            n_envs,
            episode_len: 1000,
            obs_dim: 17,
            act_dim: 6,
            hidden: 64,
            env_step_cost: 8e-4,
            step_overhead: 1e-3,
            train_epochs: 4,
        }
    }

    /// Scalar parameters of the seven-layer policy (6 linear layers).
    pub fn policy_params(&self) -> usize {
        let h = self.hidden;
        self.obs_dim * h + h + 4 * (h * h + h) + h * self.act_dim + self.act_dim
    }

    /// Inference flops for a batch (`2·params` per sample).
    pub fn infer_flops(&self, batch: usize) -> u64 {
        (2 * self.policy_params() * batch) as u64
    }

    /// Training flops (`6·params` per sample: forward + backward).
    pub fn train_flops(&self, samples: usize) -> u64 {
        (6 * self.policy_params() * samples) as u64
    }

    /// Kernel launches per fused inference step (matmul+add+activation
    /// per layer).
    pub fn infer_kernels(&self) -> u64 {
        18
    }

    /// Trajectory bytes one actor ships per episode: per step and env,
    /// obs + action + reward + log-prob and value heads.
    pub fn traj_bytes(&self, envs: usize) -> u64 {
        (self.episode_len * envs * (self.obs_dim + self.act_dim + 3) * 4) as u64
    }

    /// Policy weight payload in bytes.
    pub fn weight_bytes(&self) -> u64 {
        (self.policy_params() * 4) as u64
    }

    /// Environment-execution seconds per episode for one actor running
    /// `envs` instances over `cores` CPU cores (parallel processes).
    fn env_seconds(&self, envs: usize, cores: usize) -> f64 {
        let waves = envs.div_ceil(cores.max(1));
        self.episode_len as f64 * self.env_step_cost * waves as f64
    }

    /// Per-actor episode seconds (environment + fused inference + fixed
    /// step overheads) with `envs` instances on `cores` cores.
    fn actor_seconds(&self, cluster: &Cluster, envs: usize, cores: usize) -> f64 {
        let env = self.env_seconds(envs, cores);
        let infer = self.episode_len as f64
            * cluster.gpu.compute_time(self.infer_flops(envs), self.infer_kernels());
        let overhead = self.episode_len as f64 * self.step_overhead;
        env + infer + overhead
    }

    /// Learner training seconds for a batch of `samples` transitions.
    fn train_seconds(&self, cluster: &Cluster, samples: usize) -> f64 {
        self.train_flops(samples * self.train_epochs) as f64 / cluster.train_flops_per_sec
    }

    /// Samples produced per episode.
    pub fn samples_per_episode(&self) -> usize {
        self.n_envs * self.episode_len
    }
}

// ---------------------------------------------------------------------------
// PPO under the distribution policies (Figs. 7 & 8)
// ---------------------------------------------------------------------------

/// Per-sender stream setup/processing cost when trajectories from many
/// actors converge on one learner over a TCP/Ethernet fabric.
const PER_SENDER_GATHER_S: f64 = 1e-2;

/// DP-A (single learner, coarse sync): `p` actor fragments each drive
/// `n_envs/p` environments and a replicated policy; trajectories are
/// gathered to one learner per episode, weights broadcast back.
pub fn dp_a_episode(w: &PpoWorkload, c: &Cluster, p: usize, include_train: bool) -> f64 {
    let p = p.max(1);
    let envs_i = (w.n_envs / p).max(1);
    let gpus = c.gpus(p);
    let mut g = TaskGraph::new();
    let actor_tasks: Vec<usize> = gpus
        .iter()
        .map(|&d| {
            g.add(
                "actor",
                Resource::Device(d),
                w.actor_seconds(c, envs_i, c.cores_per_actor()),
                &[],
            )
        })
        .collect();
    let mut participants = gpus.clone();
    participants.push(DeviceId::gpu(0, 0));
    // On Ethernet-class fabrics, many senders converging on one learner
    // suffer TCP incast: each trajectory stream pays a fixed
    // setup/processing cost at the learner's ingress on top of the α–β
    // transfer time.
    let incast =
        if c.net.inter_node.latency_s > 1e-4 { p as f64 * PER_SENDER_GATHER_S } else { 0.0 };
    let gather = g.add(
        "gather-trajectories",
        Resource::None,
        c.net.gather_time(&participants, w.traj_bytes(envs_i)) + incast,
        &actor_tasks,
    );
    let train = if include_train {
        g.add(
            "train",
            Resource::Device(DeviceId::gpu(0, 0)),
            w.train_seconds(c, w.samples_per_episode()),
            &[gather],
        )
    } else {
        gather
    };
    g.add(
        "broadcast-weights",
        Resource::None,
        c.net.broadcast_time(&participants, w.weight_bytes()),
        &[train],
    );
    g.simulate().makespan
}

/// DP-B (single learner, fine sync): actor+environment fused on CPU
/// fragments; the learner holds the only policy copy and serves inference,
/// so every step pays a network round trip plus per-message processing at
/// the learner's ingress (the incast cost that makes DP-B demand "high
/// bandwidth connectivity").
pub fn dp_b_episode(w: &PpoWorkload, c: &Cluster, p: usize, include_train: bool) -> f64 {
    /// Learner-side per-message processing (deserialisation + queueing).
    const PER_MSG_S: f64 = 5e-5;
    let p = p.max(1);
    let envs_i = (w.n_envs / p).max(1);
    let env = w.env_seconds(envs_i, c.cores_per_actor());
    let overhead = w.episode_len as f64 * w.step_overhead;
    let state_bytes_i = (envs_i * w.obs_dim * 4) as u64;
    let per_step = 2.0 * c.net.inter_node.latency_s
        + p as f64 * (PER_MSG_S + state_bytes_i as f64 / c.net.inter_node.bandwidth_bps)
        + c.gpu.compute_time(w.infer_flops(w.n_envs), w.infer_kernels());
    let comm = w.episode_len as f64 * per_step;
    let train = if include_train { w.train_seconds(c, w.samples_per_episode()) } else { 0.0 };
    env + overhead + comm + train
}

/// DP-C (multiple learners): `p` fused actor+learner fragments train
/// `1/p` of the batch each and AllReduce gradients hierarchically
/// (intra-node reduce, then a ring over the participating nodes) once per
/// epoch.
pub fn dp_c_episode(w: &PpoWorkload, c: &Cluster, p: usize, include_train: bool) -> f64 {
    /// Fixed per-episode coordination cost of the data-parallel engine
    /// (gradient bucketing, barrier entry, optimiser-state broadcast).
    const DP_C_SYNC_S: f64 = 0.15;
    let p = p.max(1);
    let envs_i = (w.n_envs / p).max(1);
    let actor = w.actor_seconds(c, envs_i, c.cores_per_actor()) + DP_C_SYNC_S;
    let train = if include_train { w.train_seconds(c, w.samples_per_episode() / p) } else { 0.0 };
    let nodes_used = p.div_ceil(c.spec.node.gpus).min(c.spec.nodes).max(1);
    let grad_bytes = w.weight_bytes();
    let ring_steps = 2 * (nodes_used - 1);
    let link = if nodes_used > 1 { c.net.inter_node } else { c.net.intra_node };
    let per_epoch = ring_steps as f64
        * (link.latency_s + (grad_bytes as f64 / nodes_used.max(1) as f64) / link.bandwidth_bps);
    actor + train + w.train_epochs as f64 * per_epoch
}

/// Episode time under a policy code (`"DP-A"`, `"DP-B"`, `"DP-C"`,
/// `"DP-A'"`, `"DP-B'"` — primes exclude policy-training time, as in
/// Fig. 8b/8d).
pub fn ppo_episode(policy: &str, w: &PpoWorkload, c: &Cluster, p: usize) -> f64 {
    match policy {
        "DP-A" => dp_a_episode(w, c, p, true),
        "DP-A'" => dp_a_episode(w, c, p, false),
        "DP-B" => dp_b_episode(w, c, p, true),
        "DP-B'" => dp_b_episode(w, c, p, false),
        "DP-C" => dp_c_episode(w, c, p, true),
        other => panic!("unknown policy {other}"),
    }
}

/// Wall-clock training time to the target reward: episode time × modelled
/// episodes-to-reward (reference batch: 320 environments).
pub fn ppo_training_time(policy: &str, w: &PpoWorkload, c: &Cluster, p: usize) -> f64 {
    let episodes = match policy {
        "DP-C" => {
            let per_learner = w.samples_per_episode() / p.max(1);
            stats::episodes_multi_learner(w.n_envs, 320, per_learner)
        }
        _ => stats::episodes_single_learner(w.n_envs, 320),
    };
    ppo_episode(policy, w, c, p) * episodes
}

// ---------------------------------------------------------------------------
// A3C (Figs. 7b, 9b)
// ---------------------------------------------------------------------------

/// A3C under DP-A-style distribution: each actor owns exactly one
/// environment and computes gradients locally, sending them to the single
/// learner asynchronously. Per-actor work is independent of the actor
/// count, so episode time is flat (Fig. 7b).
pub fn a3c_episode(w: &PpoWorkload, c: &Cluster, _p: usize) -> f64 {
    let env = w.episode_len as f64 * w.env_step_cost;
    let infer = w.episode_len as f64 * c.gpu.compute_time(w.infer_flops(1), w.infer_kernels());
    let local_grad = w.train_seconds(c, w.episode_len);
    let send = c.net.inter_node.transfer_time(w.weight_bytes());
    let overhead = w.episode_len as f64 * w.step_overhead;
    env + infer + local_grad + send + overhead
}

// ---------------------------------------------------------------------------
// Ray-like baseline (Fig. 9)
// ---------------------------------------------------------------------------

/// Per-sample Python-side inference cost in the Ray-like baseline (actor
/// loops on the CPU; no batched fused inference).
const RAY_CPU_INFER_S: f64 = 1e-4;
/// Host↔device staging cost per step for Ray's asynchronous CPU-mediated
/// communication path (Fig. 9b's mechanism).
const RAY_COPY_S: f64 = 2.2e-3;
/// Environment processes MSRL launches per actor fragment (Fig. 9a:
/// "executes environment steps in parallel by launching multiple
/// processes").
const MSRL_ENV_PROCS: usize = 4;

/// Ray-like PPO: the actor on the CPU steps all of its environments
/// *sequentially* and runs per-env inference in Python.
pub fn raylike_ppo_episode(w: &PpoWorkload, _c: &Cluster, p: usize) -> f64 {
    let envs_i = (w.n_envs / p.max(1)).max(1);
    w.episode_len as f64 * envs_i as f64 * (w.env_step_cost + RAY_CPU_INFER_S)
}

/// MSRL PPO for the same comparison: parallel env processes per actor
/// plus fused GPU inference (DP-A placement on the local cluster).
pub fn msrl_ppo_episode(w: &PpoWorkload, c: &Cluster, p: usize) -> f64 {
    let envs_i = (w.n_envs / p.max(1)).max(1);
    let env = w.episode_len as f64 * w.env_step_cost * envs_i.div_ceil(MSRL_ENV_PROCS) as f64;
    let infer = w.episode_len as f64 * c.gpu.compute_time(w.infer_flops(envs_i), w.infer_kernels());
    let overhead = w.episode_len as f64 * w.step_overhead;
    env + infer + overhead
}

/// Ray-like A3C: as [`a3c_episode`], plus the CPU staging copy Ray pays on
/// its asynchronous send path each step.
pub fn raylike_a3c_episode(w: &PpoWorkload, c: &Cluster, p: usize) -> f64 {
    a3c_episode(w, c, p) + w.episode_len as f64 * RAY_COPY_S
}

// ---------------------------------------------------------------------------
// DP-D / WarpDrive (Fig. 10)
// ---------------------------------------------------------------------------

/// The GPU-only workload of Fig. 10: MPE `simple_tag` with the whole
/// training loop fused on the device.
#[derive(Debug, Clone)]
pub struct GpuLoopWorkload {
    /// Total parallel agents.
    pub agents: usize,
    /// Steps per episode (MPE horizon).
    pub episode_len: usize,
    /// Environment-physics flops per agent per step.
    pub env_flops_per_agent: u64,
    /// Policy inference+training flops per agent per step.
    pub policy_flops_per_agent: u64,
}

impl GpuLoopWorkload {
    /// The Fig. 10 configuration (policy flops cover forward + backward
    /// of the shared tag network per agent-step; calibrated so one
    /// 80k-agent episode lands near the paper's 138 ms).
    pub fn simple_tag(agents: usize) -> Self {
        GpuLoopWorkload {
            agents,
            episode_len: 25,
            env_flops_per_agent: 60,
            policy_flops_per_agent: 275_000,
        }
    }

    fn flops_per_step(&self) -> u64 {
        self.agents as u64 * (self.env_flops_per_agent + self.policy_flops_per_agent)
    }
}

/// Kernel launches per fused MSRL step (graph-compiled: environment,
/// inference and update fuse into few launches).
const MSRL_LOOP_KERNELS: u64 = 12;
/// Kernel launches per WarpDrive step (hand-written CUDA: one kernel per
/// stage, no cross-stage fusion) plus its per-step host sync cost.
const WARPDRIVE_LOOP_KERNELS: u64 = 40;
const WARPDRIVE_HOST_SYNC_S: f64 = 3e-5;

/// GPU utilisation at `agents` parallel agents: `a / (a + a₀)`. A
/// graph-compiled pipeline (operator scheduling, fusion) saturates the
/// device at small batches (`a₀ = 5k`); WarpDrive's hand-sized thread
/// blocks need far larger batches (`a₀ = 60k`) — this is Fig. 10a's gap,
/// which shrinks as agent counts grow.
fn gpu_utilisation(agents: usize, a0: f64) -> f64 {
    let a = agents as f64;
    a / (a + a0)
}

/// MSRL DP-D on `n_gpus` GPUs (agents split evenly; per-episode weight
/// AllReduce across the replicas).
pub fn dp_d_episode(w: &GpuLoopWorkload, c: &Cluster, n_gpus: usize) -> f64 {
    let n_gpus = n_gpus.max(1);
    let per_gpu = GpuLoopWorkload { agents: w.agents / n_gpus, ..w.clone() };
    let eff = gpu_utilisation(per_gpu.agents, 5_000.0);
    let step = c.gpu.compute_time(per_gpu.flops_per_step(), MSRL_LOOP_KERNELS) / eff;
    let sync = if n_gpus > 1 {
        let gpus = c.gpus(n_gpus);
        // Weights for the shared tag policy: small; synced per episode.
        c.net.allreduce_time(&gpus, 64 * 1024)
    } else {
        0.0
    };
    w.episode_len as f64 * step + sync
}

/// WarpDrive on a single GPU: same arithmetic, more launches, a host
/// sync per step, lower utilisation at small batches, and no multi-GPU
/// support (the paper's Fig. 10a).
pub fn warpdrive_episode(w: &GpuLoopWorkload, c: &Cluster) -> f64 {
    let eff = gpu_utilisation(w.agents, 60_000.0);
    let step = c.gpu.compute_time(w.flops_per_step(), WARPDRIVE_LOOP_KERNELS) / eff
        + WARPDRIVE_HOST_SYNC_S;
    w.episode_len as f64 * step
}

// ---------------------------------------------------------------------------
// MAPPO / DP-E (Fig. 11)
// ---------------------------------------------------------------------------

/// The MAPPO scalability workload of §7.4: `n` agents on MPE
/// `simple_spread` with global observations (`O(n²)` per agent, `O(n³)`
/// joint), batched over many environment instances per agent.
#[derive(Debug, Clone)]
pub struct MappoWorkload {
    /// Number of agents (= GPUs under DP-E).
    pub n_agents: usize,
    /// Steps per episode.
    pub episode_len: usize,
    /// Parallel environment instances batched per agent.
    pub env_batch: usize,
}

/// Per-agent training seconds that do not depend on the agent count
/// (actor network and per-agent heads over the large env batch) —
/// calibrated so the Fig. 11b throughput ratio between 64 and 2 agents
/// lands near the paper's 7600×.
const MAPPO_TRAIN_BASE: f64 = 300.0;

/// Per-agent training seconds per `n³` joint-observation unit on the
/// reference P100 — calibrated so a 64-agent episode takes the paper's
/// 23.8 minutes (Fig. 11a).
const MAPPO_TRAIN_K: f64 = 4.3e-3;

/// Per-agent GPU memory per `n³` joint-observation unit (activations of
/// the central critic over the batched joint observation), bytes —
/// calibrated so 64 sequential agents exceed 16 GB (the paper's OOM)
/// while 32 do not.
const MAPPO_MEM_K: f64 = 13_700.0;

/// Fixed per-episode overhead (kernel launches, env stepping, scheduler
/// sync) that dominates at small agent counts — this is what makes the
/// Fig. 11b throughput ratio grow so steeply (7600× from 2 to 64 agents).
const MAPPO_FIXED_S: f64 = 0.3;

/// GPU memory capacity assumed for the OOM check (16 GB cards).
pub const GPU_MEM_BYTES: u64 = 16 << 30;

impl MappoWorkload {
    /// The Fig. 11 configuration.
    pub fn spread(n_agents: usize) -> Self {
        MappoWorkload { n_agents, episode_len: 25, env_batch: 512 }
    }

    /// Per-agent observation width: local state plus the global
    /// agent×landmark distance table (`n²`).
    pub fn obs_dim(&self) -> usize {
        let n = self.n_agents;
        4 + 2 * n + 2 * n.saturating_sub(1) + n * n
    }

    /// Bytes of the *global-observation table* (the O(n²) critic input)
    /// each agent trains per episode across its env instances — the
    /// data volume Fig. 11b's throughput metric counts.
    pub fn obs_bytes_per_agent(&self) -> u64 {
        let n = self.n_agents;
        (self.episode_len * self.env_batch * n * n * 4) as u64
    }

    /// Joint (all-agent) observation bytes per episode — the quantity
    /// whose `O(n³)` growth drives Fig. 11.
    pub fn joint_bytes(&self) -> u64 {
        self.obs_bytes_per_agent() * self.n_agents as u64
    }

    /// Per-agent training seconds per episode on a cluster: the central
    /// critic consumes the joint observation (`n³` values), so per-agent
    /// cost grows cubically with the agent count.
    fn train_seconds_per_agent(&self, c: &Cluster) -> f64 {
        let n = self.n_agents as f64;
        (MAPPO_TRAIN_BASE + MAPPO_TRAIN_K * n * n * n) * (5.0e10 / c.train_flops_per_sec)
    }

    /// GPU memory to train one agent, bytes.
    fn mem_per_agent(&self) -> f64 {
        let n = self.n_agents as f64;
        MAPPO_MEM_K * n * n * n
    }
}

/// MSRL DP-E: one GPU trains each agent; a dedicated worker node runs all
/// environment instances; agents exchange the joint observations each
/// episode.
pub fn dp_e_episode(w: &MappoWorkload, c: &Cluster) -> f64 {
    let n = w.n_agents;
    let gpus = c.gpus(n);
    // Environment worker: O(n²) physics per instance across its cores.
    let env_flops = (w.episode_len * w.env_batch * n * n * 20) as u64;
    let env =
        env_flops as f64 / (DeviceModel::cpu_core().flops_per_sec * c.spec.node.cpu_cores as f64);
    // Joint-observation exchange per episode.
    let comm = c.net.allgather_time(&gpus, w.obs_bytes_per_agent());
    // All agents train in parallel.
    let train = w.train_seconds_per_agent(c);
    MAPPO_FIXED_S + env + comm + train
}

/// The sequential baseline: one GPU trains all `n` agents in turn.
/// Returns `None` when the joint working set exceeds GPU memory (the
/// paper's baseline runs out of memory at 64 agents); a memory-pressure
/// slowdown (spilling/recomputation) applies beyond half capacity.
pub fn sequential_mappo_episode(w: &MappoWorkload, c: &Cluster) -> Option<f64> {
    let mem = w.mem_per_agent() * w.n_agents as f64;
    if mem > GPU_MEM_BYTES as f64 {
        return None;
    }
    let env_flops = (w.episode_len * w.env_batch * w.n_agents * w.n_agents * 20) as u64;
    let env = env_flops as f64 / DeviceModel::cpu_core().flops_per_sec;
    let train = w.n_agents as f64 * w.train_seconds_per_agent(c);
    let pressure = mem / (GPU_MEM_BYTES / 2) as f64;
    let slowdown = pressure.max(1.0);
    Some(MAPPO_FIXED_S + env + train * slowdown)
}

/// Training throughput (bytes of observation data trained per second)
/// under DP-E — Fig. 11b's metric.
pub fn mappo_throughput(w: &MappoWorkload, c: &Cluster) -> f64 {
    w.joint_bytes() as f64 / dp_e_episode(w, c)
}

// ---------------------------------------------------------------------------
// §2.2 bottleneck profile
// ---------------------------------------------------------------------------

/// Fraction of single-worker episode time spent in environment execution
/// vs. policy inference+training, for a PPO-class workload (the paper
/// measures up to 98% in the environment) and a MuZero-class MARL
/// workload with a large model (97% in inference+training).
pub fn bottleneck_profile(env_cost: f64, policy_params: usize, batch: usize) -> (f64, f64) {
    let episode_len = 1000.0;
    let env = episode_len * env_cost * batch as f64;
    let gpu = DeviceModel::p100();
    let infer = episode_len * gpu.compute_time((2 * policy_params * batch) as u64, 18);
    let train = (6 * policy_params * batch * 1000 * 4) as u64 as f64 / 5.0e10;
    let total = env + infer + train;
    (env / total, (infer + train) / total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w320() -> PpoWorkload {
        PpoWorkload::halfcheetah(320)
    }

    #[test]
    fn policy_params_match_seven_layer_arithmetic() {
        let w = w320();
        // 17·64+64 + 4·(64·64+64) + 64·6+6
        assert_eq!(w.policy_params(), 17 * 64 + 64 + 4 * (64 * 64 + 64) + 64 * 6 + 6);
    }

    #[test]
    fn dp_a_episode_time_decreases_with_gpus() {
        let w = w320();
        let c = cloud();
        let t1 = dp_a_episode(&w, &c, 1, true);
        let t16 = dp_a_episode(&w, &c, 16, true);
        let t64 = dp_a_episode(&w, &c, 64, true);
        assert!(t16 < t1);
        assert!(t64 < t16);
    }

    #[test]
    fn fig8a_cloud_dp_a_speedup_band() {
        // Paper: DP-A reaches ~5.3× training-time speedup at 64 GPUs on
        // the cloud cluster. Accept a 3×–10× band.
        let w = w320();
        let c = cloud();
        let s = ppo_training_time("DP-A", &w, &c, 1) / ppo_training_time("DP-A", &w, &c, 64);
        assert!((3.0..10.0).contains(&s), "speedup {s}");
    }

    #[test]
    fn fig8a_cloud_dp_c_wins_at_16_loses_at_64() {
        let w = w320();
        let c = cloud();
        assert!(
            ppo_training_time("DP-C", &w, &c, 16) < ppo_training_time("DP-A", &w, &c, 16),
            "DP-C should win at 16 GPUs on the cloud cluster"
        );
        assert!(
            ppo_training_time("DP-C", &w, &c, 64) > ppo_training_time("DP-A", &w, &c, 64),
            "DP-A should win at 64 GPUs on the cloud cluster"
        );
    }

    #[test]
    fn fig8c_local_dp_a_always_beats_dp_c() {
        let w = w320();
        let c = local();
        for p in [2, 4, 8, 16, 32] {
            assert!(
                ppo_training_time("DP-A", &w, &c, p) < ppo_training_time("DP-C", &w, &c, p),
                "DP-A must beat DP-C at {p} GPUs on the local cluster"
            );
        }
    }

    #[test]
    fn fig8b_dp_c_trains_each_episode_faster_than_dp_a() {
        let w = w320();
        let c = cloud();
        for p in [8, 16, 32] {
            assert!(dp_c_episode(&w, &c, p, true) < dp_a_episode(&w, &c, p, true));
        }
    }

    #[test]
    fn dp_a_prime_keeps_scaling_past_32() {
        // Fig. 8b: excluding training time, 32→64 GPUs still improves by
        // ~25%.
        let w = w320();
        let c = cloud();
        let t32 = dp_a_episode(&w, &c, 32, false);
        let t64 = dp_a_episode(&w, &c, 64, false);
        let gain = (t32 - t64) / t32;
        assert!((0.1..0.5).contains(&gain), "gain {gain}");
    }

    #[test]
    fn fig7b_a3c_is_flat_ppo_is_not() {
        let w = PpoWorkload::halfcheetah(200);
        let c = cloud();
        let a3c_2 = a3c_episode(&w, &c, 2);
        let a3c_24 = a3c_episode(&w, &c, 24);
        assert!((a3c_2 - a3c_24).abs() < 1e-9, "A3C episode time is actor-independent");
        let ppo_2 = dp_a_episode(&w, &c, 2, true);
        let ppo_24 = dp_a_episode(&w, &c, 24, true);
        assert!(ppo_24 < ppo_2 / 2.0, "PPO must scale with actors");
    }

    #[test]
    fn fig7c_envs_crossover_exists() {
        // 50 actors; DP-A better at 100 envs, DP-C better at 600.
        let c = cloud();
        let t = |policy: &str, envs: usize| {
            ppo_training_time(policy, &PpoWorkload::halfcheetah(envs), &c, 50)
        };
        assert!(t("DP-A", 100) < t("DP-C", 100), "DP-A wins at 100 envs");
        assert!(t("DP-C", 600) < t("DP-A", 600), "DP-C wins at 600 envs");
    }

    #[test]
    fn fig7d_latency_crossover_exists() {
        // 400 envs, 50 actors: DP-C wins at 0.2 ms, loses by 6 ms, and is
        // the more latency-sensitive policy.
        let w = PpoWorkload::halfcheetah(400);
        let t = |policy: &str, added: f64| {
            let mut c = cloud();
            c.net = c.net.with_added_latency(added);
            ppo_training_time(policy, &w, &c, 50)
        };
        assert!(t("DP-C", 0.0) < t("DP-A", 0.0), "DP-C wins at base latency");
        assert!(t("DP-C", 6e-3) > t("DP-A", 6e-3), "DP-A wins at +6 ms");
        let c_growth = t("DP-C", 6e-3) / t("DP-C", 0.0);
        let a_growth = t("DP-A", 6e-3) / t("DP-A", 0.0);
        assert!(c_growth > 1.15, "DP-C sensitive: {c_growth}");
        assert!(a_growth < 1.05, "DP-A stable: {a_growth}");
        assert!(c_growth > 3.0 * a_growth - 2.0, "DP-C markedly more sensitive");
    }

    #[test]
    fn fig9a_msrl_beats_raylike_ppo() {
        let w = w320();
        let c = local();
        for p in [1, 8, 24] {
            let ray = raylike_ppo_episode(&w, &c, p);
            let msrl = msrl_ppo_episode(&w, &c, p);
            let ratio = ray / msrl;
            assert!((1.5..8.0).contains(&ratio), "p={p}: ratio {ratio}");
        }
    }

    #[test]
    fn fig9b_a3c_flat_and_msrl_faster() {
        let w = w320();
        let c = local();
        let msrl = a3c_episode(&w, &c, 8);
        let ray = raylike_a3c_episode(&w, &c, 8);
        let ratio = ray / msrl;
        assert!((1.5..4.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn fig10a_msrl_gap_shrinks_with_agents() {
        let c = local();
        let ratio = |agents: usize| {
            let w = GpuLoopWorkload::simple_tag(agents);
            warpdrive_episode(&w, &c) / dp_d_episode(&w, &c, 1)
        };
        let r20k = ratio(20_000);
        let r100k = ratio(100_000);
        assert!(r20k > r100k, "launch overhead dominates at small scale");
        assert!((1.05..4.0).contains(&r100k), "r100k {r100k}");
        assert!((1.2..4.0).contains(&r20k), "r20k {r20k}");
    }

    #[test]
    fn fig10b_multi_gpu_time_grows_then_stabilises() {
        let c = local();
        let t = |gpus: usize| dp_d_episode(&GpuLoopWorkload::simple_tag(80_000 * gpus), &c, gpus);
        let t2 = t(2);
        let t12 = t(12);
        assert!(t12 > t2, "sync overhead grows");
        assert!(t12 < t2 * 1.5, "but stays bounded: {t2} → {t12}");
    }

    #[test]
    fn fig11a_dp_e_beats_sequential_superlinearly() {
        let c = cloud();
        let w = MappoWorkload::spread(32);
        let seq = sequential_mappo_episode(&w, &c).expect("32 agents fit");
        let par = dp_e_episode(&w, &c);
        let speedup = seq / par;
        assert!(speedup > 32.0, "memory pressure makes speedup superlinear: {speedup}");
        assert!(speedup < 200.0, "speedup {speedup}");
    }

    #[test]
    fn fig11a_sequential_baseline_ooms_at_64() {
        let c = cloud();
        assert!(sequential_mappo_episode(&MappoWorkload::spread(64), &c).is_none());
        assert!(sequential_mappo_episode(&MappoWorkload::spread(32), &c).is_some());
    }

    #[test]
    fn fig11b_throughput_grows_steeply_with_agents() {
        let c = cloud();
        let t2 = mappo_throughput(&MappoWorkload::spread(2), &c);
        let t64 = mappoth_or(&c, 64);
        assert!(t64 / t2 > 100.0, "throughput ratio {}", t64 / t2);
    }

    fn mappoth_or(c: &Cluster, n: usize) -> f64 {
        mappo_throughput(&MappoWorkload::spread(n), c)
    }

    #[test]
    fn sec22_ppo_is_env_bound_muzero_like_is_not() {
        // PPO / expensive env, small policy.
        let (env_frac, _) = bottleneck_profile(8e-4, 18_000, 320);
        assert!(env_frac > 0.9, "PPO env fraction {env_frac}");
        // MARL-class: cheap vectorised env, very large policy.
        let (env_frac2, nn_frac) = bottleneck_profile(1e-6, 20_000_000, 320);
        assert!(nn_frac > 0.9, "MuZero-like NN fraction {nn_frac}");
        assert!(env_frac2 < 0.1);
    }

    #[test]
    fn obs_volume_is_cubic_in_agents() {
        let v = |n: usize| MappoWorkload::spread(n).joint_bytes() as f64;
        let ratio = v(32) / v(16);
        assert!(ratio > 6.0 && ratio < 10.0, "ratio {ratio}");
    }
}
