//! # msrl-sim
//!
//! A discrete-event cluster simulator for the msrl-rs reproduction.
//!
//! The paper evaluates MSRL on two GPU clusters (Tab. 3): 16 Azure VMs
//! with 64 P100s on PCIe/10 GbE, and a 4-node machine with 32 V100s on
//! NVLink/InfiniBand. Neither is available here, so every timing figure
//! (Figs. 7–11) is regenerated on this simulator:
//!
//! * [`device`] — throughput models for a P100-class GPU, a V100-class
//!   GPU, and a CPU core, including kernel-launch overhead (which is what
//!   makes unfused fragments slow, §5.2) and host↔device copy costs;
//! * [`engine`] — a virtual-clock task-graph scheduler: tasks occupy
//!   resources (devices or links), respect dependencies, and the engine
//!   reports per-task completion times and the makespan;
//! * [`scenarios`] — workload models that assemble, for each distribution
//!   policy of Tab. 2, the per-episode task graph of PPO/A3C/MAPPO
//!   training and price it on a cluster — the generators behind every
//!   figure binary in `msrl-bench`;
//! * [`stats`] — the statistical-efficiency model linking per-learner
//!   batch size to episodes-to-convergence (the Hoffer et al. [16]
//!   argument the paper uses to explain DP-C's behaviour in Fig. 7a/8a).
//!
//! The simulator consumes the *same* FDG cost quantities (`msrl_core::cost`)
//! and the *same* collective formulas (`msrl_comm::model`) that the real
//! execution path uses, so simulated and real runs share one semantics.

#![warn(missing_docs)]

pub mod device;
pub mod engine;
pub mod fdg_sim;
pub mod scenarios;
pub mod stats;

pub use device::DeviceModel;
pub use engine::{Resource, Schedule, SimTask, TaskGraph};
