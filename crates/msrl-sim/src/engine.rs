//! The virtual-clock task-graph scheduler.
//!
//! A simulated execution is a DAG of [`SimTask`]s. Each task occupies one
//! [`Resource`] (a device, a network link, or none for pure delays) for
//! its duration and starts once (i) all dependencies completed and
//! (ii) its resource is free. The engine walks tasks in dependency order,
//! maintaining per-resource free times on a virtual clock — a
//! deterministic list-scheduling discrete-event simulation.
//!
//! Tasks must be supplied in topological order (dependencies before
//! dependents), which the scenario builders guarantee by construction.

use std::collections::HashMap;

use msrl_comm::DeviceId;

/// What a task occupies while running.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// A compute device (serialises its tasks).
    Device(DeviceId),
    /// The duplex link between two nodes (serialises transfers between
    /// that pair; node order is normalised).
    Link(usize, usize),
    /// No resource: a pure delay (e.g. pipelined latency).
    None,
}

impl Resource {
    /// A link resource with normalised node order.
    pub fn link(a: usize, b: usize) -> Resource {
        Resource::Link(a.min(b), a.max(b))
    }
}

/// One unit of simulated work.
#[derive(Debug, Clone)]
pub struct SimTask {
    /// Stable label for reporting (e.g. `"env[3]"`, `"train"`).
    pub label: String,
    /// Resource occupied while running.
    pub resource: Resource,
    /// Busy time in seconds.
    pub duration: f64,
    /// Indices of prerequisite tasks.
    pub deps: Vec<usize>,
}

/// A task graph under construction.
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    tasks: Vec<SimTask>,
}

impl TaskGraph {
    /// An empty graph.
    pub fn new() -> Self {
        TaskGraph::default()
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Adds a task; returns its index. Dependencies must already exist.
    ///
    /// # Panics
    ///
    /// Panics when a dependency index is out of range (a scenario-builder
    /// bug, not a runtime input).
    pub fn add(
        &mut self,
        label: impl Into<String>,
        resource: Resource,
        duration: f64,
        deps: &[usize],
    ) -> usize {
        let id = self.tasks.len();
        for &d in deps {
            assert!(d < id, "dependency {d} of task {id} not yet defined");
        }
        self.tasks.push(SimTask {
            label: label.into(),
            resource,
            duration: duration.max(0.0),
            deps: deps.to_vec(),
        });
        id
    }

    /// Runs the simulation.
    pub fn simulate(&self) -> Schedule {
        let mut completion = vec![0.0f64; self.tasks.len()];
        let mut free: HashMap<Resource, f64> = HashMap::new();
        for (i, t) in self.tasks.iter().enumerate() {
            let ready = t.deps.iter().map(|&d| completion[d]).fold(0.0, f64::max);
            let start = match t.resource {
                Resource::None => ready,
                r => {
                    let f = free.get(&r).copied().unwrap_or(0.0);
                    ready.max(f)
                }
            };
            let end = start + t.duration;
            if t.resource != Resource::None {
                free.insert(t.resource, end);
            }
            completion[i] = end;
        }
        let makespan = completion.iter().copied().fold(0.0, f64::max);
        Schedule { completion, makespan }
    }
}

/// The result of simulating a task graph.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Completion time of each task, by index.
    pub completion: Vec<f64>,
    /// Time at which the last task finishes.
    pub makespan: f64,
}

impl Schedule {
    /// Busy time charged to one resource across a task graph (for
    /// utilisation/bottleneck reports).
    pub fn busy_time(graph: &TaskGraph, resource: Resource) -> f64 {
        graph.tasks.iter().filter(|t| t.resource == resource).map(|t| t.duration).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(i: usize) -> Resource {
        Resource::Device(DeviceId::gpu(i, 0))
    }

    #[test]
    fn independent_tasks_on_different_devices_run_in_parallel() {
        let mut g = TaskGraph::new();
        g.add("a", dev(0), 1.0, &[]);
        g.add("b", dev(1), 1.0, &[]);
        assert_eq!(g.simulate().makespan, 1.0);
    }

    #[test]
    fn same_device_serialises() {
        let mut g = TaskGraph::new();
        g.add("a", dev(0), 1.0, &[]);
        g.add("b", dev(0), 1.0, &[]);
        assert_eq!(g.simulate().makespan, 2.0);
    }

    #[test]
    fn dependencies_chain() {
        let mut g = TaskGraph::new();
        let a = g.add("a", dev(0), 1.0, &[]);
        let b = g.add("b", dev(1), 2.0, &[a]);
        let s = g.simulate();
        assert_eq!(s.completion[b], 3.0);
        assert_eq!(s.makespan, 3.0);
    }

    #[test]
    fn fan_in_waits_for_slowest() {
        let mut g = TaskGraph::new();
        let a = g.add("a", dev(0), 1.0, &[]);
        let b = g.add("b", dev(1), 5.0, &[]);
        let c = g.add("c", dev(2), 1.0, &[a, b]);
        let s = g.simulate();
        assert_eq!(s.completion[c], 6.0);
    }

    #[test]
    fn pure_delays_do_not_serialise() {
        let mut g = TaskGraph::new();
        g.add("d1", Resource::None, 3.0, &[]);
        g.add("d2", Resource::None, 3.0, &[]);
        assert_eq!(g.simulate().makespan, 3.0);
    }

    #[test]
    fn links_serialise_transfers() {
        let mut g = TaskGraph::new();
        g.add("t1", Resource::link(0, 1), 1.0, &[]);
        g.add("t2", Resource::link(1, 0), 1.0, &[]); // same normalised link
        g.add("t3", Resource::link(0, 2), 1.0, &[]); // different link
        let s = g.simulate();
        assert_eq!(s.makespan, 2.0);
    }

    #[test]
    fn busy_time_accumulates_per_resource() {
        let mut g = TaskGraph::new();
        g.add("a", dev(0), 1.5, &[]);
        g.add("b", dev(0), 0.5, &[]);
        g.add("c", dev(1), 9.0, &[]);
        assert_eq!(Schedule::busy_time(&g, dev(0)), 2.0);
        assert_eq!(Schedule::busy_time(&g, dev(1)), 9.0);
    }

    #[test]
    #[should_panic(expected = "not yet defined")]
    fn forward_dependency_panics() {
        let mut g = TaskGraph::new();
        g.add("a", dev(0), 1.0, &[3]);
    }
}
