//! Integration test for the flight recorder's post-mortem path: a
//! panicking worker thread must leave a structurally valid dump on
//! disk, written by the panic hook before the unwind propagates.

use msrl_telemetry as telemetry;

#[test]
fn worker_panic_writes_valid_dump() {
    let dir = std::env::temp_dir().join(format!("msrl-flightrec-test-{}", std::process::id()));
    let dir_s = dir.to_str().expect("utf-8 temp dir").to_string();
    let _ = std::fs::remove_dir_all(&dir);
    telemetry::flightrec::set_dump_dir(&dir_s);
    telemetry::flightrec::set_flightrec_enabled(true);
    telemetry::install_panic_hook();

    // A worker doing instrumented work before dying mid-iteration.
    let worker = std::thread::spawn(|| {
        for i in 0..10 {
            let _s = telemetry::span!("fragment.test_worker", 1);
            telemetry::counter("test.worker.iters", 1);
            if i == 7 {
                panic!("injected worker failure at iteration {i}");
            }
        }
    });
    assert!(worker.join().is_err(), "worker must have panicked");

    let dumps: Vec<_> = std::fs::read_dir(&dir)
        .expect("dump dir exists")
        .filter_map(Result::ok)
        .filter(|e| {
            e.file_name().to_string_lossy().starts_with("flightrec-")
                && e.file_name().to_string_lossy().ends_with(".json")
        })
        .collect();
    assert!(!dumps.is_empty(), "panic hook wrote a dump");

    let content = std::fs::read_to_string(dumps[0].path()).expect("dump readable");
    let n = telemetry::validate_flightrec(&content).expect("dump is structurally valid");
    assert!(n >= 1, "ring captured the worker's recent events");
    assert!(content.contains("injected worker failure"), "panic reason recorded");
    assert!(content.contains("fragment.test_worker"), "worker's recent spans are in the ring");
    assert!(content.contains("\"trigger\": \"panic\""));

    let _ = std::fs::remove_dir_all(&dir);
}
