//! Property tests for the always-on histogram: the log₂-bucket
//! quantile estimate must land within one bucket of the exact
//! nearest-rank percentile on arbitrary distributions.

use std::sync::atomic::{AtomicU64, Ordering};

use msrl_telemetry::{bucket_index, percentile_ns, Histogram};
use proptest::prelude::*;

/// Registry names are process-global; give every proptest case its own
/// histogram.
fn fresh_histogram() -> Histogram {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    Histogram::handle(&format!("hist.prop.{}", SEQ.fetch_add(1, Ordering::Relaxed)))
}

fn assert_within_one_bucket(est: u64, exact: u64, what: &str) -> Result<(), TestCaseError> {
    let eb = bucket_index(est) as i64;
    let xb = bucket_index(exact) as i64;
    prop_assert!(
        (eb - xb).abs() <= 1,
        "{what}: estimate {est} (bucket {eb}) vs exact {exact} (bucket {xb})"
    );
    Ok(())
}

fn check_distribution(values: &[u64]) -> Result<(), TestCaseError> {
    let h = fresh_histogram();
    for &v in values {
        h.record(v);
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let s = h.snapshot();
    prop_assert_eq!(s.count, values.len() as u64);
    assert_within_one_bucket(s.p50_ns, percentile_ns(&sorted, 50.0), "p50")?;
    assert_within_one_bucket(s.p90_ns, percentile_ns(&sorted, 90.0), "p90")?;
    assert_within_one_bucket(s.p99_ns, percentile_ns(&sorted, 99.0), "p99")?;
    assert_within_one_bucket(s.max_ns, *sorted.last().unwrap(), "max")?;
    Ok(())
}

proptest! {
    /// Small-range distributions (sub-microsecond latencies).
    #[test]
    fn quantiles_track_exact_small(values in proptest::collection::vec(0u64..4096, 1..200)) {
        check_distribution(&values)?;
    }

    /// Wide-range distributions spanning many decades (ns to minutes),
    /// exercised by exponentiating a uniform bit width.
    #[test]
    fn quantiles_track_exact_wide(
        shifts in proptest::collection::vec(0u32..40, 1..200),
        fills in proptest::collection::vec(0u64..1024, 200),
    ) {
        let values: Vec<u64> = shifts
            .iter()
            .zip(&fills)
            .map(|(&s, &f)| (1u64 << s) + (f % (1u64 << s).max(1)))
            .collect();
        check_distribution(&values)?;
    }

    /// Bimodal mixes (the fast-path/slow-path shape blocked-recv
    /// latencies actually have).
    #[test]
    fn quantiles_track_exact_bimodal(
        fast in proptest::collection::vec(100u64..1000, 50..150),
        slow in proptest::collection::vec(1_000_000u64..50_000_000, 1..20),
    ) {
        let mut values = fast;
        values.extend(slow);
        check_distribution(&values)?;
    }
}
