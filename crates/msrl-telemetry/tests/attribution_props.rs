//! Property tests for the critical-path attribution engine.
//!
//! Invariants under arbitrary inputs:
//!
//! * [`StepDag::critical_path`]: the path length is at least the longest
//!   single node, at most the sum of all nodes, equals the sum of the
//!   nodes on the returned path, and the path respects the dependency
//!   edges.
//! * [`attribute`]: every fragment's components sum to the iteration
//!   wall time *exactly*, the window means sum to the wall within
//!   per-component integer rounding, and the critical path dominates
//!   every single fragment's busy time.

use msrl_telemetry::{attribute, DagNode, StepClass, StepDag, StepStamp};
use proptest::prelude::*;
use proptest::test_runner::TestRng;

/// Random DAG where every node may only depend on lower-indexed nodes,
/// so acyclicity holds by construction. (The vendored proptest shim has
/// no tuple/`prop_map` combinators; a hand-rolled strategy is the
/// supported extension point.)
struct DagStrategy;

impl proptest::strategy::Strategy for DagStrategy {
    type Value = StepDag;
    fn new_value(&self, rng: &mut TestRng) -> StepDag {
        let n = 1 + rng.below(40) as usize;
        let nodes = (0..n)
            .map(|i| {
                let mut deps: Vec<usize> = (0..rng.below(4))
                    .filter(|_| i > 0)
                    .map(|_| rng.below(i as u64) as usize)
                    .collect();
                deps.sort_unstable();
                deps.dedup();
                DagNode { dur_ns: rng.below(1_000_000), deps }
            })
            .collect();
        StepDag { nodes }
    }
}

const ROLES: [&str; 3] = ["actor", "learner", "env_worker"];
const CLASSES: [StepClass; 4] =
    [StepClass::Rollout, StepClass::Learn, StepClass::Comm, StepClass::Eval];

/// Random stamp sets: a handful of fragments across three roles, steps
/// of every class at arbitrary (overlapping, window-crossing) offsets.
struct StampStrategy;

impl proptest::strategy::Strategy for StampStrategy {
    type Value = Vec<StepStamp>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<StepStamp> {
        let n = rng.below(60) as usize;
        (0..n)
            .map(|_| {
                let start = rng.below(2000);
                StepStamp {
                    role: ROLES[rng.below(3) as usize],
                    fragment: rng.below(4),
                    class: CLASSES[rng.below(4) as usize],
                    start_ns: start,
                    end_ns: start + 1 + rng.below(499),
                }
            })
            .collect()
    }
}

proptest! {
    #[test]
    fn critical_path_bounds_and_chain(dag in DagStrategy) {
        let cp = dag.critical_path();
        let max_node = dag.nodes.iter().map(|n| n.dur_ns).max().unwrap_or(0);
        let total: u64 = dag.nodes.iter().map(|n| n.dur_ns).sum();
        prop_assert!(cp.len_ns >= max_node, "path {} < longest node {max_node}", cp.len_ns);
        prop_assert!(cp.len_ns <= total, "path {} > sum of nodes {total}", cp.len_ns);
        let path_sum: u64 = cp.path.iter().map(|&i| dag.nodes[i].dur_ns).sum();
        prop_assert_eq!(path_sum, cp.len_ns, "path nodes must account for the whole length");
        for pair in cp.path.windows(2) {
            prop_assert!(
                dag.nodes[pair[1]].deps.contains(&pair[0]),
                "consecutive path nodes {} -> {} must be linked by a dependency",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn attribution_components_sum_to_wall(
        stamps in StampStrategy,
        window_start in 0u64..500,
        window_len in 1u64..2500,
        k in 1.0f64..8.0,
    ) {
        let attr = attribute(&stamps, window_start, window_start + window_len, k);
        prop_assert_eq!(attr.wall_ns, window_len);
        for f in &attr.fragments {
            let sum = f.rollout_ns + f.learn_ns + f.comm_ns + f.eval_ns + f.idle_ns + f.slack_ns;
            prop_assert_eq!(
                sum, f.wall_ns,
                "fragment {}/{} components {sum} must equal wall {}", f.role.clone(), f.fragment, f.wall_ns
            );
            prop_assert_eq!(f.busy_ns, f.rollout_ns + f.learn_ns + f.comm_ns + f.eval_ns);
            prop_assert!(f.busy_ns <= f.wall_ns, "overlapping stamps must not double count");
        }
        // Window means: each of the six components is a floor-divided
        // mean of an exact identity, so the reassembled sum may round
        // down by at most one per component.
        let sum = attr.component_sum_ns();
        prop_assert!(sum <= attr.wall_ns || attr.fragments.is_empty());
        if !attr.fragments.is_empty() {
            prop_assert!(
                attr.wall_ns - sum <= 6,
                "means sum {sum} strays more than rounding from wall {}",
                attr.wall_ns
            );
        }
        let max_busy = attr.fragments.iter().map(|f| f.busy_ns).max().unwrap_or(0);
        prop_assert!(
            attr.critical_path_ns >= max_busy,
            "critical path {} < busiest fragment {max_busy}",
            attr.critical_path_ns
        );
    }
}
