//! Unified telemetry for the msrl-rs runtime.
//!
//! Every layer of the execution path — the operator interpreter, the
//! communication fabric, the distribution-policy drivers, the environment
//! steppers and the tensor buffer pool — reports into this one crate, so
//! distribution policies can be *compared* the way the paper compares
//! them (§6): per-fragment execution time, communication volume, and
//! phase breakdowns, all from a single metric pipeline.
//!
//! Three primitive kinds:
//!
//! * **Spans** — timed `Begin`/`End` intervals recorded into per-thread
//!   buffers (no locks on the hot path). Spans are gated by the
//!   `MSRL_TRACE` environment variable (or [`set_enabled`]); when tracing
//!   is off, opening a span costs one relaxed atomic load.
//! * **Counters** — named monotonic totals held in a process-wide
//!   registry of relaxed atomics. Counters are *always on*: an increment
//!   is one `fetch_add`, cheap enough that reports (baseline comparisons,
//!   byte totals) work without enabling tracing. Hot call sites cache a
//!   [`Counter`] handle (or use [`static_counter!`]) to skip the registry
//!   lookup.
//! * **Gauges** — named last-value/high-water readings ([`Gauge`]).
//! * **Histograms** — always-on lock-free log₂-bucket latency
//!   distributions ([`Histogram`]): record = one relaxed `fetch_add`,
//!   read back as estimated p50/p90/p99 — real quantiles without
//!   enabling tracing.
//!
//! Live-run observability rides on top: the [`sink`] module streams one
//! [`RunEvent`] per driver iteration as JSONL (`MSRL_METRICS_FILE`) and
//! renders a Prometheus-style exposition ([`metrics_text`],
//! `MSRL_METRICS_TEXT_FILE`); the [`flightrec`] module keeps a bounded
//! per-thread ring of recent span/counter events (on even when tracing
//! is off, `MSRL_FLIGHTREC=0` disables) and dumps it with registry
//! snapshots on panic or driver error for post-mortem debugging; the
//! [`attribution`] module turns always-on phase/comm/eval step stamps
//! into a per-iteration critical-path and time-attribution breakdown
//! (rollout / learn / comm-blocked / idle / straggler slack per
//! fragment) carried on `RunEvent` schema v2.
//!
//! Two exporters turn a drained event stream into artefacts:
//! [`chrome_trace`] emits Chrome trace-event JSON (open it in Perfetto or
//! `chrome://tracing`; thread lanes are worker threads, async lanes are
//! fragments), and [`TelemetryReport`] aggregates p50/p99 span durations
//! plus counter/gauge snapshots into text or JSON summaries.
//!
//! # Quick start
//!
//! ```
//! use msrl_telemetry as telemetry;
//! telemetry::set_enabled(true);
//! {
//!     let _span = telemetry::span!("fragment.eval", 3);
//!     telemetry::counter("demo.ops", 2);
//! }
//! let events = telemetry::drain();
//! assert_eq!(events.len(), 2); // balanced Begin/End
//! let trace = telemetry::chrome_trace(&events);
//! telemetry::validate_chrome_trace(&trace).unwrap();
//! telemetry::set_enabled(false);
//! ```
//!
//! Environment variables: `MSRL_TRACE=1` enables span recording for the
//! whole process; `MSRL_TRACE_FILE=trace.json` makes binaries that call
//! [`write_trace_to_env_file`] dump the Chrome trace there on exit.

#![warn(missing_docs)]

pub mod attribution;
mod chrome;
pub mod flightrec;
pub mod health;
mod histogram;
mod recorder;
mod registry;
mod report;
pub mod sink;

pub use attribution::{
    attr_enabled, attribute, finish_iteration, record_step, reset_window, set_attr_enabled,
    set_fragment, step, steps_dropped, straggler_k, CriticalPath, DagNode, FragmentAttr,
    IterAttribution, StepClass, StepDag, StepGuard, StepStamp,
};
pub use chrome::{chrome_trace, validate_chrome_trace, TraceCheck};
pub use flightrec::{install_panic_hook, validate_flightrec};
pub use health::{
    audit_every, health_enabled, max_rel_err, record_audit, replay_stream, request_audit,
    set_audit_every, set_health_enabled, set_last_verdict, take_audit_request, HealthConfig,
    HealthFinding, HealthMonitor, HealthSample, HealthStatus, HealthVerdict, Severity,
};
pub use histogram::{
    bucket_estimate, bucket_index, bucket_lower_bound, histogram_record, histogram_stats,
    histograms_raw_snapshot, histograms_snapshot, reset_histograms, HistTimer, Histogram,
    HistogramStats, HISTOGRAM_BUCKETS,
};
pub use recorder::{clear_events, drain, flush_thread, span, span_id, Event, Phase, SpanGuard};
pub use registry::{
    counter, counter_total, counters_snapshot, gauge_max, gauge_set, gauges_snapshot,
    reset_counters, reset_gauges, Counter, Gauge,
};
pub use report::{percentile_ns, SpanStats, TelemetryReport};
pub use sink::{
    emit_run_event, flush_metrics, metrics_text, run_events_emitted, set_metrics_file,
    validate_metrics, ActsrvStats, RunEvent,
};

use std::sync::atomic::{AtomicU8, Ordering};

const UNSET: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

static ENABLED: AtomicU8 = AtomicU8::new(UNSET);

/// Whether span recording is active.
///
/// Resolved from `MSRL_TRACE` on first call (`1`/`true`/`on` enable it),
/// then a single relaxed atomic load — the entire disabled-path cost of
/// every instrumentation site.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        ON => true,
        OFF => false,
        _ => resolve_enabled(),
    }
}

#[cold]
fn resolve_enabled() -> bool {
    let on = matches!(
        std::env::var("MSRL_TRACE").as_deref(),
        Ok("1") | Ok("true") | Ok("TRUE") | Ok("on") | Ok("ON")
    );
    set_enabled(on);
    on
}

/// Programmatically enables or disables span recording (takes precedence
/// over `MSRL_TRACE`). Counters and gauges are unaffected — they are
/// always live.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { ON } else { OFF }, Ordering::Relaxed);
}

/// Opens a span; two forms: `span!("name")` and `span!("name", id)` where
/// `id` labels the fragment/replica the span belongs to (it becomes the
/// async-lane id in the Chrome trace).
///
/// Bind the result to a local (`let _span = ...`) so the span closes when
/// the scope ends; with tracing disabled this is a no-op guard.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $id:expr) => {
        $crate::span_id($name, $id as u64)
    };
}

/// Interns a [`Counter`] handle once per call site and returns a
/// `&'static Counter` — the pattern for hot paths that cannot afford a
/// registry lookup per increment.
#[macro_export]
macro_rules! static_counter {
    ($name:expr) => {{
        static CELL: std::sync::OnceLock<$crate::Counter> = std::sync::OnceLock::new();
        CELL.get_or_init(|| $crate::Counter::handle($name))
    }};
}

/// Interns a [`Histogram`] handle once per call site and returns a
/// `&'static Histogram` — like [`static_counter!`], for hot paths that
/// record latency observations every call.
#[macro_export]
macro_rules! static_histogram {
    ($name:expr) => {{
        static CELL: std::sync::OnceLock<$crate::Histogram> = std::sync::OnceLock::new();
        CELL.get_or_init(|| $crate::Histogram::handle($name))
    }};
}

/// If `MSRL_TRACE_FILE` is set, drains all recorded events, writes the
/// Chrome trace there, and returns the path written. Binaries call this
/// once at exit.
///
/// # Errors
///
/// Propagates the I/O error when the file cannot be written.
pub fn write_trace_to_env_file() -> std::io::Result<Option<String>> {
    let Ok(path) = std::env::var("MSRL_TRACE_FILE") else {
        return Ok(None);
    };
    if path.is_empty() {
        return Ok(None);
    }
    let events = drain();
    std::fs::write(&path, chrome_trace(&events))?;
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global-state touching checks run in one test body: `cargo test`
    /// runs sibling tests on parallel threads and the enable flag, event
    /// sink and registry are process-wide.
    #[test]
    fn end_to_end_record_export_report() {
        set_enabled(false);
        clear_events();
        {
            let _s = span!("quiet.section");
        }
        assert!(drain().is_empty(), "disabled tracing records nothing");

        set_enabled(true);
        clear_events();
        {
            let _outer = span!("fragment.eval", 7);
            let _inner = span!("lib.op");
        }
        let t = std::thread::spawn(|| {
            let _s = span!("worker.section");
        });
        t.join().unwrap();
        let events = drain();
        assert_eq!(events.len(), 6, "three balanced spans");
        let tids: std::collections::HashSet<u64> = events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 2, "two thread lanes");

        let trace = chrome_trace(&events);
        let check = validate_chrome_trace(&trace).expect("emitted trace validates");
        assert_eq!(check.span_pairs, 3);
        assert_eq!(check.fragment_spans, 1);
        assert_eq!(check.async_pairs, 1, "fragment span gets an async lane");

        let report = TelemetryReport::from_events(&events);
        let frag = report.span("fragment.eval").expect("span aggregated");
        assert_eq!(frag.count, 1);
        assert!(frag.p50_ns <= frag.p99_ns && frag.p99_ns <= frag.max_ns);
        set_enabled(false);
    }

    #[test]
    fn scoped_counters_feed_the_global_total() {
        let a = Counter::scoped("test.scoped_feed");
        let b = Counter::scoped("test.scoped_feed");
        a.add(3);
        b.add(4);
        assert_eq!(a.get(), 3, "scoped handle sees only its own increments");
        assert_eq!(b.get(), 4);
        assert!(counter_total("test.scoped_feed") >= 7, "global total sees both");
    }

    #[test]
    fn gauges_track_max() {
        let g = Gauge::handle("test.hw");
        g.maximum(3.0);
        g.maximum(9.5);
        g.maximum(1.0);
        assert_eq!(g.get(), 9.5);
    }
}
