//! Critical-path attribution: where each training iteration's time goes.
//!
//! MSRL's central claim is that the right distribution policy depends on
//! *which* stage bounds an iteration — rollout, learn, or communication.
//! This module makes that observable on every run, without `MSRL_TRACE`:
//! fragments stamp their phase executions and collective waits into
//! per-thread step buffers ([`step`], [`record_step`]), and at each
//! iteration boundary the driver's observer calls [`finish_iteration`],
//! which drains the stamps and computes
//!
//! * a per-fragment time breakdown — rollout / learn / comm-blocked /
//!   interpreter compute / scheduler idle / straggler slack — whose
//!   components sum to the iteration wall time by construction,
//! * per-fragment straggler flags (busy time above `k ×` the median of
//!   the fragment's role peers, `k` from `MSRL_STRAGGLER_K`),
//! * the critical path through the iteration's step-dependency DAG
//!   ([`StepDag`]): intra-fragment program order plus cross-fragment
//!   edges at collective (comm) rounds, longest path in O(nodes+edges).
//!
//! Stamping is always on (disable with `MSRL_ATTR=0`): a stamp is one
//! uncontended mutex lock and a ring push on the calling thread, a few
//! per fragment per iteration — measured in `bench_report` as
//! `attr_record_ns`/`attr_finish_iter_ns` and held inside the <5%
//! always-on probe bound. Buffers are bounded ([`STEP_CAPACITY`] per
//! thread); overflow drops the oldest stamps and counts `attr.dropped`.
//!
//! The attribution rides the run-metrics stream: `RunEvent` schema
//! `msrl.run_event.v2` carries one [`IterAttribution`] per iteration,
//! consumed live by `msrl-bench`'s `top` view and the advisor's live
//! re-partition recommendations.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Step stamps retained per thread between iteration boundaries.
pub const STEP_CAPACITY: usize = 4096;

const UNSET: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

static ATTR_ENABLED: AtomicU8 = AtomicU8::new(UNSET);

/// Whether attribution stamping is active. Resolved from `MSRL_ATTR` on
/// first call (on unless `0`/`false`/`off`), then one relaxed load.
#[inline]
pub fn attr_enabled() -> bool {
    match ATTR_ENABLED.load(Ordering::Relaxed) {
        ON => true,
        OFF => false,
        _ => resolve_enabled(),
    }
}

#[cold]
fn resolve_enabled() -> bool {
    let off = matches!(
        std::env::var("MSRL_ATTR").as_deref(),
        Ok("0") | Ok("false") | Ok("FALSE") | Ok("off") | Ok("OFF")
    );
    set_attr_enabled(!off);
    !off
}

/// Programmatically enables or disables attribution stamping (takes
/// precedence over `MSRL_ATTR`).
pub fn set_attr_enabled(on: bool) {
    ATTR_ENABLED.store(if on { ON } else { OFF }, Ordering::Relaxed);
}

/// The straggler threshold `k`: a fragment is flagged when its busy time
/// exceeds `k ×` the median busy time of its role peers. Resolved from
/// `MSRL_STRAGGLER_K` (default 2.0) on first call.
pub fn straggler_k() -> f64 {
    static K_BITS: AtomicU64 = AtomicU64::new(0);
    let bits = K_BITS.load(Ordering::Relaxed);
    if bits != 0 {
        return f64::from_bits(bits);
    }
    let k = std::env::var("MSRL_STRAGGLER_K")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|k| k.is_finite() && *k >= 1.0)
        .unwrap_or(2.0);
    K_BITS.store(k.to_bits(), Ordering::Relaxed);
    k
}

/// What a stamped step was doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepClass {
    /// Environment interaction / experience collection.
    Rollout,
    /// Gradient computation and weight updates.
    Learn,
    /// Blocked in a communication primitive (weight sync, collective
    /// wait). Nested comm stamps carve blocked time out of the phase
    /// that contains them.
    Comm,
    /// Interpreter fragment evaluation outside any driver phase
    /// (interpreter-driven workloads); nested under a phase it adds
    /// nothing — the sweep assigns each instant to one class.
    Eval,
}

impl StepClass {
    /// Priority when stamps overlap: an instant covered by several
    /// classes is attributed to the highest (comm wins over the phase
    /// that contains it; phases win over nested interpreter evals).
    fn priority(self) -> u8 {
        match self {
            StepClass::Comm => 3,
            StepClass::Learn => 2,
            StepClass::Rollout => 1,
            StepClass::Eval => 0,
        }
    }

    /// Stable name for streams and displays.
    pub fn name(self) -> &'static str {
        match self {
            StepClass::Rollout => "rollout",
            StepClass::Learn => "learn",
            StepClass::Comm => "comm",
            StepClass::Eval => "eval",
        }
    }
}

/// One stamped step: a fragment spent `[start_ns, end_ns)` in `class`.
#[derive(Debug, Clone)]
pub struct StepStamp {
    /// Fragment role (`"actor"`, `"learner"`, ...), the peer-group key
    /// for straggler detection.
    pub role: &'static str,
    /// Fragment id within its role (driver rank).
    pub fragment: u64,
    /// What the step was doing.
    pub class: StepClass,
    /// Start, nanoseconds on the telemetry clock.
    pub start_ns: u64,
    /// End, nanoseconds on the telemetry clock.
    pub end_ns: u64,
}

struct ThreadSteps {
    inner: Mutex<ThreadStepsInner>,
}

struct ThreadStepsInner {
    /// The fragment this thread hosts (set by the driver at fragment
    /// start); stamps without one fall back to `("thread", tid)`.
    role: &'static str,
    fragment: u64,
    has_fragment: bool,
    tid: u64,
    steps: std::collections::VecDeque<(StepClass, u64, u64)>,
    dropped: u64,
}

fn buffers() -> &'static Mutex<Vec<Arc<ThreadSteps>>> {
    static BUFS: OnceLock<Mutex<Vec<Arc<ThreadSteps>>>> = OnceLock::new();
    BUFS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL_STEPS: Arc<ThreadSteps> = {
        let buf = Arc::new(ThreadSteps {
            inner: Mutex::new(ThreadStepsInner {
                role: "thread",
                fragment: crate::recorder::current_tid(),
                has_fragment: false,
                tid: crate::recorder::current_tid(),
                steps: std::collections::VecDeque::with_capacity(64),
                dropped: 0,
            }),
        });
        buffers().lock().expect("attribution buffers poisoned").push(Arc::clone(&buf));
        buf
    };
}

/// Declares the fragment the calling thread hosts; subsequent stamps on
/// this thread (including comm waits deep in the fabric) attach to it.
/// Drivers call this once at each fragment thread's entry.
pub fn set_fragment(role: &'static str, fragment: u64) {
    let _ = LOCAL_STEPS.try_with(|b| {
        let mut inner = b.inner.lock().expect("attribution buffer poisoned");
        inner.role = role;
        inner.fragment = fragment;
        inner.has_fragment = true;
    });
}

/// Records one completed step on the calling thread's buffer.
pub fn record_step(class: StepClass, start_ns: u64, end_ns: u64) {
    if !attr_enabled() || end_ns <= start_ns {
        return;
    }
    let _ = LOCAL_STEPS.try_with(|b| {
        let mut inner = b.inner.lock().expect("attribution buffer poisoned");
        if inner.steps.len() >= STEP_CAPACITY {
            inner.steps.pop_front();
            inner.dropped += 1;
        }
        inner.steps.push_back((class, start_ns, end_ns));
    });
}

/// RAII step stamp: records `[open, drop)` as one step of its class.
#[must_use = "bind the guard to a local so the step is stamped at scope exit"]
pub struct StepGuard {
    class: StepClass,
    start_ns: u64,
    armed: bool,
}

impl Drop for StepGuard {
    fn drop(&mut self) {
        if self.armed {
            record_step(self.class, self.start_ns, crate::recorder::now_ns());
        }
    }
}

/// Opens a step of `class` on the calling thread; the returned guard
/// stamps it when dropped. With attribution disabled this is inert.
#[inline]
pub fn step(class: StepClass) -> StepGuard {
    let armed = attr_enabled();
    StepGuard { class, start_ns: if armed { crate::recorder::now_ns() } else { 0 }, armed }
}

/// Stamps dropped to ring-buffer overflow so far (process-wide).
pub fn steps_dropped() -> u64 {
    let bufs = buffers().lock().expect("attribution buffers poisoned").clone();
    bufs.iter().map(|b| b.inner.lock().expect("attribution buffer poisoned").dropped).sum()
}

static WINDOW_START: AtomicU64 = AtomicU64::new(0);

/// Opens a fresh iteration window at "now": stamps recorded before this
/// instant are clipped away from the next [`finish_iteration`]. Drivers'
/// observers call it once at run start.
pub fn reset_window() {
    WINDOW_START.store(crate::recorder::now_ns(), Ordering::Relaxed);
}

/// Closes the current iteration window: drains every thread's stamps,
/// attributes the window `[last boundary, now)`, and opens the next
/// window at "now". Returns the iteration's attribution.
pub fn finish_iteration() -> IterAttribution {
    let end = crate::recorder::now_ns();
    let start = WINDOW_START.swap(end, Ordering::Relaxed).min(end);
    let mut stamps = Vec::new();
    let bufs = buffers().lock().expect("attribution buffers poisoned").clone();
    for buf in bufs {
        let mut inner = buf.inner.lock().expect("attribution buffer poisoned");
        let (role, fragment) =
            if inner.has_fragment { (inner.role, inner.fragment) } else { ("thread", inner.tid) };
        // Keep stamps that end inside a later window for that window:
        // drain only steps that finished by the boundary.
        let mut keep = std::collections::VecDeque::new();
        for (class, s, e) in inner.steps.drain(..) {
            if e <= end {
                stamps.push(StepStamp { role, fragment, class, start_ns: s, end_ns: e });
            } else {
                keep.push_back((class, s, e));
            }
        }
        inner.steps = keep;
    }
    attribute(&stamps, start, end, straggler_k())
}

/// Per-fragment share of one iteration window. All `_ns` components sum
/// to `wall_ns` exactly: the sweep assigns every covered instant to one
/// class, `idle + slack` is the remainder.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FragmentAttr {
    /// Fragment role (peer-group key).
    pub role: String,
    /// Fragment id within its role.
    pub fragment: u64,
    /// Rollout compute inside the window.
    pub rollout_ns: u64,
    /// Learn compute inside the window (nested comm carved out).
    pub learn_ns: u64,
    /// Blocked in communication primitives.
    pub comm_ns: u64,
    /// Interpreter evaluation outside driver phases.
    pub eval_ns: u64,
    /// Unattributed scheduler idle (window minus everything else).
    pub idle_ns: u64,
    /// Idle attributable to waiting for the busiest role peer.
    pub slack_ns: u64,
    /// Total stamped (busy) time: rollout + learn + comm + eval.
    pub busy_ns: u64,
    /// The window length (same for every fragment of the iteration).
    pub wall_ns: u64,
    /// Busy time exceeds `k ×` the median of the role peers.
    pub straggler: bool,
    /// The fragment owns at least one critical-path node.
    pub critical: bool,
}

/// One training iteration's attribution: per-fragment breakdowns, the
/// critical path, and window-level means whose components also sum to
/// `wall_ns` (up to integer rounding — each is the mean of per-fragment
/// components that sum exactly).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IterAttribution {
    /// Iteration window length.
    pub wall_ns: u64,
    /// Longest path through the step-dependency DAG, clamped to
    /// `wall_ns` (see `cp_clamped`).
    pub critical_path_ns: u64,
    /// Whether the DAG's longest path exceeded the iteration wall and
    /// was clamped. BSP collectives serialise every member's compute
    /// *and* comm into the dependency chain, so rounds that really
    /// overlapped can over-serialise the path past wall time — an
    /// honest flag beats an impossible number.
    pub cp_clamped: bool,
    /// Mean rollout compute across fragments.
    pub rollout_ns: u64,
    /// Mean learn compute across fragments.
    pub learn_ns: u64,
    /// Mean comm-blocked time across fragments.
    pub comm_ns: u64,
    /// Mean interpreter-eval compute across fragments.
    pub eval_ns: u64,
    /// Mean scheduler idle across fragments.
    pub idle_ns: u64,
    /// Mean straggler slack across fragments.
    pub slack_ns: u64,
    /// The dominant class: `"rollout"`, `"learn"`, `"comm"`, or
    /// `"idle"`.
    pub bottleneck: &'static str,
    /// Per-fragment rows, sorted by (role, id).
    pub fragments: Vec<FragmentAttr>,
}

impl IterAttribution {
    /// Sum of the window-level breakdown components (equals `wall_ns` up
    /// to per-component integer rounding).
    pub fn component_sum_ns(&self) -> u64 {
        self.rollout_ns + self.learn_ns + self.comm_ns + self.eval_ns + self.idle_ns + self.slack_ns
    }
}

/// One node of a step-dependency DAG: a duration plus the indices of the
/// nodes that must finish before it starts.
#[derive(Debug, Clone)]
pub struct DagNode {
    /// Node execution time.
    pub dur_ns: u64,
    /// Indices of predecessor nodes.
    pub deps: Vec<usize>,
}

/// An explicit step-dependency DAG; [`StepDag::critical_path`] is the
/// longest-duration chain through it.
#[derive(Debug, Clone, Default)]
pub struct StepDag {
    /// The DAG's nodes; edges live in each node's `deps`.
    pub nodes: Vec<DagNode>,
}

/// The longest path through a [`StepDag`].
#[derive(Debug, Clone, Default)]
pub struct CriticalPath {
    /// Total duration along the path.
    pub len_ns: u64,
    /// Node indices on the path, in execution order.
    pub path: Vec<usize>,
}

impl StepDag {
    /// Longest path by dynamic programming over a Kahn topological
    /// order — O(nodes + edges). Nodes on cycles (which the engine never
    /// produces) are ignored rather than looping.
    pub fn critical_path(&self) -> CriticalPath {
        let n = self.nodes.len();
        if n == 0 {
            return CriticalPath::default();
        }
        let mut indegree = vec![0usize; n];
        let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, node) in self.nodes.iter().enumerate() {
            for &d in &node.deps {
                if d < n && d != i {
                    indegree[i] += 1;
                    out_edges[d].push(i);
                }
            }
        }
        let mut queue: std::collections::VecDeque<usize> =
            (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut finish = vec![0u64; n];
        let mut pred: Vec<Option<usize>> = vec![None; n];
        while let Some(i) = queue.pop_front() {
            let mut best = 0u64;
            for &d in &self.nodes[i].deps {
                if d < n && d != i && finish[d] >= best {
                    best = finish[d];
                    pred[i] = Some(d);
                }
            }
            finish[i] = best + self.nodes[i].dur_ns;
            for &next in &out_edges[i] {
                indegree[next] -= 1;
                if indegree[next] == 0 {
                    queue.push_back(next);
                }
            }
        }
        let Some(end) = (0..n).max_by_key(|&i| finish[i]) else {
            return CriticalPath::default();
        };
        let mut path = Vec::new();
        let mut cur = Some(end);
        while let Some(i) = cur {
            path.push(i);
            cur = pred[i];
        }
        path.reverse();
        CriticalPath { len_ns: finish[end], path }
    }
}

/// A contiguous single-class run of one fragment's timeline, produced by
/// the priority sweep.
#[derive(Debug, Clone, Copy)]
struct Segment {
    class: StepClass,
    start_ns: u64,
    end_ns: u64,
}

/// Sweeps one fragment's (clipped) stamps into non-overlapping
/// single-class segments: at each instant the highest-priority active
/// class wins, so nested comm waits carve time out of their phase and
/// nested interpreter evals add nothing.
fn sweep_segments(stamps: &[&StepStamp], window: (u64, u64)) -> Vec<Segment> {
    // Boundary events: +1/-1 per class, processed in time order.
    let mut events: Vec<(u64, i32, StepClass)> = Vec::with_capacity(stamps.len() * 2);
    for s in stamps {
        let lo = s.start_ns.clamp(window.0, window.1);
        let hi = s.end_ns.clamp(window.0, window.1);
        if hi > lo {
            events.push((lo, 1, s.class));
            events.push((hi, -1, s.class));
        }
    }
    if events.is_empty() {
        return Vec::new();
    }
    events.sort_by_key(|&(t, delta, _)| (t, delta));
    let mut active = [0i64; 4]; // indexed by priority
    let mut segments: Vec<Segment> = Vec::new();
    let mut prev_t = events[0].0;
    for (t, delta, class) in events {
        if t > prev_t {
            // Emit the elementary interval [prev_t, t) under the
            // highest active class, merging with the previous segment
            // when contiguous and same-class.
            if let Some(p) = (0..4).rev().find(|&p| active[p] > 0) {
                let class = match p {
                    3 => StepClass::Comm,
                    2 => StepClass::Learn,
                    1 => StepClass::Rollout,
                    _ => StepClass::Eval,
                };
                match segments.last_mut() {
                    Some(last) if last.end_ns == prev_t && last.class == class => {
                        last.end_ns = t;
                    }
                    _ => segments.push(Segment { class, start_ns: prev_t, end_ns: t }),
                }
            }
            prev_t = t;
        }
        active[class.priority() as usize] += i64::from(delta);
    }
    segments
}

/// Builds the iteration's step-dependency DAG from per-fragment segment
/// timelines: intra-fragment program order, plus cross-fragment edges at
/// collective rounds (each fragment's k-th comm segment depends on every
/// peer's last pre-round-k node — the BSP structure of the drivers).
/// Returns the DAG and each node's owning fragment index.
fn build_dag(timelines: &[Vec<Segment>]) -> (StepDag, Vec<usize>) {
    let mut dag = StepDag::default();
    let mut owner = Vec::new();
    // node id of (fragment, segment) and comm-round indices.
    let mut node_of: Vec<Vec<usize>> = Vec::with_capacity(timelines.len());
    let mut comm_rounds: Vec<Vec<usize>> = Vec::with_capacity(timelines.len()); // seg idx per round
    for (f, segs) in timelines.iter().enumerate() {
        let mut ids = Vec::with_capacity(segs.len());
        let mut rounds = Vec::new();
        for (k, seg) in segs.iter().enumerate() {
            let id = dag.nodes.len();
            let deps = if k > 0 { vec![ids[k - 1]] } else { Vec::new() };
            dag.nodes.push(DagNode { dur_ns: seg.end_ns - seg.start_ns, deps });
            ids.push(id);
            owner.push(f);
            if seg.class == StepClass::Comm {
                rounds.push(k);
            }
        }
        node_of.push(ids);
        comm_rounds.push(rounds);
    }
    let max_rounds = comm_rounds.iter().map(|r| r.len()).max().unwrap_or(0);
    for round in 0..max_rounds {
        for f in 0..timelines.len() {
            let Some(&comm_seg) = comm_rounds[f].get(round) else { continue };
            let comm_node = node_of[f][comm_seg];
            for (g, g_rounds) in comm_rounds.iter().enumerate() {
                if g == f {
                    continue;
                }
                let Some(&g_comm_seg) = g_rounds.get(round) else { continue };
                // The peer's last node before its own round-`round`
                // collective must finish before this collective can.
                if g_comm_seg > 0 {
                    dag.nodes[comm_node].deps.push(node_of[g][g_comm_seg - 1]);
                }
            }
        }
    }
    (dag, owner)
}

/// Pure attribution over a set of stamps and a window — the function
/// [`finish_iteration`] applies to the drained buffers, exposed for
/// property tests. Components of every returned [`FragmentAttr`] sum to
/// the window length exactly.
pub fn attribute(stamps: &[StepStamp], start_ns: u64, end_ns: u64, k: f64) -> IterAttribution {
    let wall = end_ns.saturating_sub(start_ns);
    let mut attr = IterAttribution { wall_ns: wall, bottleneck: "idle", ..Default::default() };
    if wall == 0 {
        return attr;
    }
    // Group stamps by fragment, deterministically ordered.
    let mut by_frag: std::collections::BTreeMap<(&str, u64), Vec<&StepStamp>> =
        std::collections::BTreeMap::new();
    for s in stamps {
        if s.end_ns > start_ns && s.start_ns < end_ns {
            by_frag.entry((s.role, s.fragment)).or_default().push(s);
        }
    }
    let mut timelines = Vec::with_capacity(by_frag.len());
    for ((role, fragment), stamps) in &by_frag {
        let segs = sweep_segments(stamps, (start_ns, end_ns));
        let mut row = FragmentAttr {
            role: (*role).to_string(),
            fragment: *fragment,
            wall_ns: wall,
            ..Default::default()
        };
        for seg in &segs {
            let d = seg.end_ns - seg.start_ns;
            match seg.class {
                StepClass::Rollout => row.rollout_ns += d,
                StepClass::Learn => row.learn_ns += d,
                StepClass::Comm => row.comm_ns += d,
                StepClass::Eval => row.eval_ns += d,
            }
        }
        row.busy_ns = row.rollout_ns + row.learn_ns + row.comm_ns + row.eval_ns;
        row.idle_ns = wall - row.busy_ns.min(wall);
        attr.fragments.push(row);
        timelines.push(segs);
    }
    // Straggler flags and slack against the role peer group.
    let roles: Vec<String> = attr.fragments.iter().map(|f| f.role.clone()).collect();
    for role in roles.iter().collect::<std::collections::BTreeSet<_>>() {
        let mut busy: Vec<u64> =
            attr.fragments.iter().filter(|f| f.role == **role).map(|f| f.busy_ns).collect();
        if busy.len() < 2 {
            continue;
        }
        busy.sort_unstable();
        let median = busy[busy.len() / 2];
        let max_busy = *busy.last().expect("non-empty");
        for f in attr.fragments.iter_mut().filter(|f| f.role == **role) {
            // Slack: the part of this fragment's idle spent waiting for
            // its slowest peer — carved out of idle so components still
            // sum to the wall time.
            f.slack_ns = max_busy.saturating_sub(f.busy_ns).min(f.idle_ns);
            f.idle_ns -= f.slack_ns;
            f.straggler = median > 0 && (f.busy_ns as f64) > k * median as f64;
        }
    }
    // Critical path over the step DAG.
    let (dag, owner) = build_dag(&timelines);
    let cp = dag.critical_path();
    attr.critical_path_ns = cp.len_ns;
    if attr.critical_path_ns > wall {
        attr.critical_path_ns = wall;
        attr.cp_clamped = true;
        crate::static_counter!("attr.cp_clamped").add(1);
    }
    for &node in &cp.path {
        attr.fragments[owner[node]].critical = true;
    }
    // Window-level means (components of an exact per-fragment identity,
    // so their sum matches the wall up to rounding).
    let n = attr.fragments.len() as u64;
    let mean = |total: u64| total.checked_div(n).unwrap_or(0);
    attr.rollout_ns = mean(attr.fragments.iter().map(|f| f.rollout_ns).sum());
    attr.learn_ns = mean(attr.fragments.iter().map(|f| f.learn_ns).sum());
    attr.comm_ns = mean(attr.fragments.iter().map(|f| f.comm_ns).sum());
    attr.eval_ns = mean(attr.fragments.iter().map(|f| f.eval_ns).sum());
    attr.idle_ns = mean(attr.fragments.iter().map(|f| f.idle_ns).sum());
    attr.slack_ns = mean(attr.fragments.iter().map(|f| f.slack_ns).sum());
    let classes = [
        ("rollout", attr.rollout_ns),
        ("learn", attr.learn_ns),
        ("comm", attr.comm_ns),
        ("idle", attr.idle_ns + attr.slack_ns),
    ];
    attr.bottleneck =
        classes.iter().max_by_key(|(_, v)| *v).map(|(name, _)| *name).unwrap_or("idle");
    attr
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamp(
        role: &'static str,
        fragment: u64,
        class: StepClass,
        start_ns: u64,
        end_ns: u64,
    ) -> StepStamp {
        StepStamp { role, fragment, class, start_ns, end_ns }
    }

    #[test]
    fn components_sum_to_wall_and_nested_comm_is_carved_out() {
        // One actor: rollout [0,40), learn [40,90) with a nested comm
        // wait [60,80), in a 100 ns window.
        let stamps = vec![
            stamp("actor", 0, StepClass::Rollout, 0, 40),
            stamp("actor", 0, StepClass::Learn, 40, 90),
            stamp("actor", 0, StepClass::Comm, 60, 80),
        ];
        let attr = attribute(&stamps, 0, 100, 2.0);
        assert_eq!(attr.wall_ns, 100);
        let f = &attr.fragments[0];
        assert_eq!(f.rollout_ns, 40);
        assert_eq!(f.learn_ns, 30, "nested comm carves 20 ns out of learn");
        assert_eq!(f.comm_ns, 20);
        assert_eq!(f.idle_ns, 10);
        assert_eq!(
            f.rollout_ns + f.learn_ns + f.comm_ns + f.eval_ns + f.idle_ns + f.slack_ns,
            f.wall_ns
        );
        assert_eq!(attr.component_sum_ns(), 100);
        assert_eq!(attr.bottleneck, "rollout");
    }

    #[test]
    fn straggler_and_slack_against_role_peers() {
        // Three actors; actor 2 is 5x slower than its peers. The fast
        // peers' wait shows up as slack, not unexplained idle.
        let stamps = vec![
            stamp("actor", 0, StepClass::Rollout, 0, 100),
            stamp("actor", 1, StepClass::Rollout, 0, 110),
            stamp("actor", 2, StepClass::Rollout, 0, 500),
        ];
        let attr = attribute(&stamps, 0, 500, 2.0);
        let by_id = |id: u64| attr.fragments.iter().find(|f| f.fragment == id).unwrap();
        assert!(by_id(2).straggler, "5x median must flag");
        assert!(!by_id(0).straggler && !by_id(1).straggler);
        assert_eq!(by_id(0).slack_ns, 400, "fast peer waits for the straggler");
        assert_eq!(by_id(0).idle_ns, 0);
        for f in &attr.fragments {
            assert_eq!(
                f.rollout_ns + f.learn_ns + f.comm_ns + f.eval_ns + f.idle_ns + f.slack_ns,
                f.wall_ns
            );
        }
    }

    #[test]
    fn critical_path_spans_collective_rounds() {
        // BSP round: both fragments compute then join one collective.
        // The critical path must route through the slower fragment's
        // compute: 80 (slow) + 20 (comm) = 100, not 30 + 20.
        let stamps = vec![
            stamp("actor", 0, StepClass::Rollout, 0, 30),
            stamp("actor", 0, StepClass::Comm, 30, 100),
            stamp("actor", 1, StepClass::Rollout, 0, 80),
            stamp("actor", 1, StepClass::Comm, 80, 100),
        ];
        let attr = attribute(&stamps, 0, 100, 2.0);
        // Fragment 0's comm node depends on fragment 1's rollout: the
        // longest chain is rollout(80) -> comm(70 or 20).
        assert!(
            attr.critical_path_ns >= 100,
            "critical path must include the slow peer: {}",
            attr.critical_path_ns
        );
        assert!(attr.fragments.iter().any(|f| f.fragment == 1 && f.critical));
        // The reported path never exceeds the iteration wall.
        assert!(attr.critical_path_ns <= attr.wall_ns);
    }

    #[test]
    fn over_serialised_bsp_path_is_clamped_and_flagged() {
        // Two fragments that genuinely overlap: each computes 60 and
        // comms 40 inside a 100 ns window. The BSP DAG serialises the
        // peer's compute before each comm node, so the raw longest path
        // (60 + 40 + …) exceeds the wall; the attribution must clamp it
        // to the wall and flag the clamp instead of reporting an
        // impossible number.
        let stamps = vec![
            stamp("actor", 0, StepClass::Rollout, 0, 60),
            stamp("actor", 0, StepClass::Comm, 60, 100),
            stamp("actor", 1, StepClass::Rollout, 0, 95),
            stamp("actor", 1, StepClass::Comm, 95, 100),
        ];
        let before = crate::counter_total("attr.cp_clamped");
        let attr = attribute(&stamps, 0, 100, 2.0);
        assert_eq!(attr.critical_path_ns, attr.wall_ns, "clamped to the wall");
        assert!(attr.cp_clamped, "clamp is flagged, not silent");
        assert!(crate::counter_total("attr.cp_clamped") > before);
        // A path that fits is left alone and unflagged.
        let fits = attribute(&[stamp("actor", 0, StepClass::Rollout, 0, 30)], 0, 100, 2.0);
        assert!(!fits.cp_clamped);
        assert_eq!(fits.critical_path_ns, 30);
    }

    #[test]
    fn dag_critical_path_diamond() {
        // 0 -> {1 (10), 2 (30)} -> 3: longest path 5 + 30 + 7.
        let dag = StepDag {
            nodes: vec![
                DagNode { dur_ns: 5, deps: vec![] },
                DagNode { dur_ns: 10, deps: vec![0] },
                DagNode { dur_ns: 30, deps: vec![0] },
                DagNode { dur_ns: 7, deps: vec![1, 2] },
            ],
        };
        let cp = dag.critical_path();
        assert_eq!(cp.len_ns, 42);
        assert_eq!(cp.path, vec![0, 2, 3]);
    }

    #[test]
    fn guard_records_into_window() {
        set_attr_enabled(true);
        set_fragment("test_guard", 7);
        reset_window();
        {
            let _s = step(StepClass::Learn);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let attr = finish_iteration();
        let f = attr
            .fragments
            .iter()
            .find(|f| f.role == "test_guard" && f.fragment == 7)
            .expect("stamped fragment appears");
        assert!(f.learn_ns > 0, "guard must have stamped learn time: {f:?}");
        assert_eq!(
            f.rollout_ns + f.learn_ns + f.comm_ns + f.eval_ns + f.idle_ns + f.slack_ns,
            f.wall_ns
        );
    }
}
