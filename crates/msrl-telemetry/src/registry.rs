//! The always-on counter and gauge registry.
//!
//! Counters and gauges are named process-wide atomics: incrementing one
//! is a relaxed `fetch_add`, reading a snapshot locks the registry map
//! briefly. They are deliberately *not* gated by the `MSRL_TRACE` flag —
//! baseline reports and byte totals must work in ordinary runs — so hot
//! call sites should cache a handle ([`Counter::handle`] /
//! [`static_counter!`](crate::static_counter)) rather than paying the
//! by-name lookup per increment.
//!
//! [`Counter::scoped`] supports the pattern the baselines need: a private
//! count (per actor, per run) whose increments *also* feed the global
//! named total, so one metric pipeline serves both per-component
//! assertions and whole-process reports.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

type Cells = Mutex<BTreeMap<String, Arc<AtomicU64>>>;

fn counters() -> &'static Cells {
    static CELLS: OnceLock<Cells> = OnceLock::new();
    CELLS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn gauges() -> &'static Cells {
    static CELLS: OnceLock<Cells> = OnceLock::new();
    CELLS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn intern(map: &'static Cells, name: &str) -> Arc<AtomicU64> {
    let mut m = map.lock().expect("telemetry registry poisoned");
    if let Some(cell) = m.get(name) {
        return Arc::clone(cell);
    }
    let cell = Arc::new(AtomicU64::new(0));
    m.insert(name.to_string(), Arc::clone(&cell));
    cell
}

/// A handle on a named monotonic counter.
#[derive(Debug, Clone)]
pub struct Counter {
    /// Private count when created with [`Counter::scoped`].
    scoped: Option<Arc<AtomicU64>>,
    /// The registry's named total.
    global: Arc<AtomicU64>,
}

impl Counter {
    /// A plain handle: increments go to (and [`get`](Counter::get) reads)
    /// the global named total.
    pub fn handle(name: &str) -> Counter {
        Counter { scoped: None, global: intern(counters(), name) }
    }

    /// A scoped handle: increments feed both a private count and the
    /// global named total; [`get`](Counter::get) reads the private count.
    pub fn scoped(name: &str) -> Counter {
        Counter { scoped: Some(Arc::new(AtomicU64::new(0))), global: intern(counters(), name) }
    }

    /// Adds `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.global.fetch_add(delta, Ordering::Relaxed);
        if let Some(s) = &self.scoped {
            s.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// The scoped count for scoped handles, the global total otherwise.
    pub fn get(&self) -> u64 {
        self.scoped.as_deref().unwrap_or(&self.global).load(Ordering::Relaxed)
    }
}

/// Adds `delta` to the named counter (registry lookup per call — fine
/// for cold paths; hot sites cache a [`Counter`]). Cold-path bumps are
/// also noted on the flight-recorder ring; cached handles are not —
/// their totals appear in dumps via the registry snapshot.
pub fn counter(name: &str, delta: u64) {
    crate::flightrec::note_count(name, delta);
    intern(counters(), name).fetch_add(delta, Ordering::Relaxed);
}

/// The named counter's global total (0 if never touched).
pub fn counter_total(name: &str) -> u64 {
    let m = counters().lock().expect("telemetry registry poisoned");
    m.get(name).map_or(0, |c| c.load(Ordering::Relaxed))
}

/// All counters, name-sorted. The ordering is a guarantee (the
/// registry is a `BTreeMap`), so report/JSON artefacts diff cleanly
/// across runs.
pub fn counters_snapshot() -> Vec<(String, u64)> {
    let m = counters().lock().expect("telemetry registry poisoned");
    m.iter().map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed))).collect()
}

/// Zeroes every global counter (scoped handles keep their private
/// counts). Used between profiled runs so totals attribute cleanly.
pub fn reset_counters() {
    let m = counters().lock().expect("telemetry registry poisoned");
    for v in m.values() {
        v.store(0, Ordering::Relaxed);
    }
}

/// A handle on a named gauge (an `f64` reading stored as bits).
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// A handle on the named gauge.
    pub fn handle(name: &str) -> Gauge {
        Gauge { cell: intern(gauges(), name) }
    }

    /// Stores a reading.
    #[inline]
    pub fn set(&self, value: f64) {
        self.cell.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Raises the gauge to `value` if it exceeds the current reading —
    /// the high-water-mark update.
    pub fn maximum(&self, value: f64) {
        let mut cur = self.cell.load(Ordering::Relaxed);
        while value > f64::from_bits(cur) {
            match self.cell.compare_exchange_weak(
                cur,
                value.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The current reading.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.cell.load(Ordering::Relaxed))
    }
}

/// Stores a reading on the named gauge (cold-path convenience).
pub fn gauge_set(name: &str, value: f64) {
    Gauge { cell: intern(gauges(), name) }.set(value);
}

/// High-water update on the named gauge (cold-path convenience).
pub fn gauge_max(name: &str, value: f64) {
    Gauge { cell: intern(gauges(), name) }.maximum(value);
}

/// All gauges, name-sorted (guaranteed, like
/// [`counters_snapshot`]).
pub fn gauges_snapshot() -> Vec<(String, f64)> {
    let m = gauges().lock().expect("telemetry registry poisoned");
    m.iter().map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed)))).collect()
}

/// Zeroes every gauge.
pub fn reset_gauges() {
    let m = gauges().lock().expect("telemetry registry poisoned");
    for v in m.values() {
        v.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_snapshots() {
        counter("registry.test.a", 2);
        counter("registry.test.a", 3);
        assert_eq!(counter_total("registry.test.a"), 5);
        assert!(counters_snapshot().iter().any(|(k, v)| k == "registry.test.a" && *v == 5));
    }

    #[test]
    fn snapshots_are_name_sorted() {
        // Register out of order; snapshots must come back sorted.
        counter("registry.sort.zz", 1);
        counter("registry.sort.aa", 1);
        gauge_set("registry.sort.z", 1.0);
        gauge_set("registry.sort.a", 1.0);
        let c: Vec<String> = counters_snapshot().into_iter().map(|(k, _)| k).collect();
        let mut cs = c.clone();
        cs.sort_unstable();
        assert_eq!(c, cs, "counters_snapshot is name-sorted");
        let g: Vec<String> = gauges_snapshot().into_iter().map(|(k, _)| k).collect();
        let mut gs = g.clone();
        gs.sort_unstable();
        assert_eq!(g, gs, "gauges_snapshot is name-sorted");
    }

    #[test]
    fn gauge_set_and_max() {
        gauge_set("registry.test.g", 2.5);
        gauge_max("registry.test.g", 1.0);
        assert_eq!(
            gauges_snapshot().iter().find(|(k, _)| k == "registry.test.g").unwrap().1,
            2.5,
            "maximum() never lowers a gauge"
        );
    }
}
