//! The training-metrics stream: one [`RunEvent`] per driver iteration,
//! written as JSONL to `MSRL_METRICS_FILE` and summarised as a
//! Prometheus-style text exposition ([`metrics_text`], dumped to
//! `MSRL_METRICS_TEXT_FILE` by [`flush_metrics`]).
//!
//! Every exec driver (`dp_a`–`dp_f`, `a3c`) emits the per-iteration
//! training signal — episode return, loss, entropy, throughput, comm
//! bytes, staleness, plan-cache hit-rate — the raw data behind the
//! paper's throughput/convergence figures, streamed live instead of
//! reconstructed post-hoc. Each JSONL line is written with a single
//! `write` on a file opened in append mode, so concurrent processes
//! (the e2e test binaries in CI share one metrics file) never interleave
//! partial lines.
//!
//! Two schemas coexist on one stream: plain training lines are
//! `msrl.run_event.v1`; lines carrying a critical-path attribution
//! ([`RunEvent::attr`]) are `msrl.run_event.v2` and add an `attr`
//! object whose per-fragment components sum exactly to the iteration
//! wall time — the validator enforces the identity.
//!
//! [`validate_metrics`] structurally checks a metrics file line by line;
//! the `validate_metrics` binary wraps it for CI.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::sync::{Mutex, OnceLock};

/// Schema tag of attribution-free metrics lines.
pub const RUN_EVENT_SCHEMA: &str = "msrl.run_event.v1";

/// Schema tag of metrics lines carrying a critical-path attribution.
pub const RUN_EVENT_SCHEMA_V2: &str = "msrl.run_event.v2";

/// Schema tag of metrics lines carrying a per-iteration health block
/// (they may also carry an attribution).
pub const RUN_EVENT_SCHEMA_V3: &str = "msrl.run_event.v3";

/// Act-server activity during one iteration (counter deltas of the
/// `actsrv.*` family): how many cross-actor batched forwards ran and
/// how many observation rows they covered. Carried on [`RunEvent`] only
/// when the act server is active — its presence does not bump the
/// schema tag (both v1 and v2 lines may carry it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActsrvStats {
    /// Batched forwards run by round leaders this iteration.
    pub batches: u64,
    /// Observation rows those forwards covered (≥ `batches`: every
    /// round batches at least one live client's rows).
    pub rows: u64,
}

/// One per-iteration training-metrics record.
#[derive(Debug, Clone, PartialEq)]
pub struct RunEvent {
    /// Distribution policy (`"dp_a"` … `"dp_f"`, `"a3c"`).
    pub policy: &'static str,
    /// Zero-based iteration (for A3C: applied gradient push) index.
    pub iteration: u64,
    /// Mean episode return observed this iteration.
    pub reward: f64,
    /// Training loss, when the driver computes one centrally.
    pub loss: Option<f64>,
    /// Policy entropy (mean over the batch), when available.
    pub entropy: Option<f64>,
    /// Iterations per second over the last iteration.
    pub iters_per_sec: f64,
    /// Fabric bytes sent during the iteration (process-wide delta).
    pub comm_bytes: u64,
    /// Configured staleness bound the iteration ran under.
    pub staleness: u64,
    /// Plan-cache hit rate so far (`None` before any plan lookup).
    pub plan_cache_hit_rate: Option<f64>,
    /// Critical-path attribution for the iteration; when present the
    /// line is stamped schema v2 and carries the per-fragment breakdown.
    pub attr: Option<crate::IterAttribution>,
    /// Act-server batching activity this iteration; `None` when the
    /// cross-actor act server is off.
    pub actsrv: Option<ActsrvStats>,
    /// Per-iteration health block from the watchdog; when present the
    /// line is stamped schema v3 (see [`crate::health`]).
    pub health: Option<crate::HealthStatus>,
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x}"),
        _ => "null".to_string(),
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn attr_json(a: &crate::IterAttribution) -> String {
    let mut frags = String::from("[");
    for (i, f) in a.fragments.iter().enumerate() {
        if i > 0 {
            frags.push_str(", ");
        }
        frags.push_str(&format!(
            concat!(
                "{{\"role\": \"{}\", \"id\": {}, \"rollout_ns\": {}, \"learn_ns\": {}, ",
                "\"comm_ns\": {}, \"eval_ns\": {}, \"idle_ns\": {}, \"slack_ns\": {}, ",
                "\"busy_ns\": {}, \"wall_ns\": {}, \"straggler\": {}, \"critical\": {}}}"
            ),
            f.role,
            f.fragment,
            f.rollout_ns,
            f.learn_ns,
            f.comm_ns,
            f.eval_ns,
            f.idle_ns,
            f.slack_ns,
            f.busy_ns,
            f.wall_ns,
            f.straggler,
            f.critical,
        ));
    }
    frags.push(']');
    format!(
        concat!(
            "{{\"wall_ns\": {}, \"critical_path_ns\": {}, \"cp_clamped\": {}, ",
            "\"rollout_ns\": {}, ",
            "\"learn_ns\": {}, \"comm_ns\": {}, \"eval_ns\": {}, \"idle_ns\": {}, ",
            "\"slack_ns\": {}, \"bottleneck\": \"{}\", \"fragments\": {}}}"
        ),
        a.wall_ns,
        a.critical_path_ns,
        a.cp_clamped,
        a.rollout_ns,
        a.learn_ns,
        a.comm_ns,
        a.eval_ns,
        a.idle_ns,
        a.slack_ns,
        a.bottleneck,
        frags,
    )
}

impl RunEvent {
    /// The schema tag this event is stamped with: v3 when it carries a
    /// health block, v2 when it carries (only) an attribution, v1
    /// otherwise.
    pub fn schema(&self) -> &'static str {
        if self.health.is_some() {
            RUN_EVENT_SCHEMA_V3
        } else if self.attr.is_some() {
            RUN_EVENT_SCHEMA_V2
        } else {
            RUN_EVENT_SCHEMA
        }
    }

    /// Renders the event as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let attr_field = match &self.attr {
            Some(a) => format!(", \"attr\": {}", attr_json(a)),
            None => String::new(),
        };
        let actsrv_field = match &self.actsrv {
            Some(s) => {
                format!(", \"actsrv\": {{\"batches\": {}, \"rows\": {}}}", s.batches, s.rows)
            }
            None => String::new(),
        };
        let health_field = match &self.health {
            Some(h) => format!(", \"health\": {}", h.to_json()),
            None => String::new(),
        };
        format!(
            concat!(
                "{{\"schema\": \"{}\", \"policy\": \"{}\", \"iteration\": {}, ",
                "\"reward\": {}, \"loss\": {}, \"entropy\": {}, \"iters_per_sec\": {}, ",
                "\"comm_bytes\": {}, \"staleness\": {}, \"plan_cache_hit_rate\": {}{}{}{}}}"
            ),
            self.schema(),
            self.policy,
            self.iteration,
            fmt_f64(self.reward),
            fmt_opt(self.loss),
            fmt_opt(self.entropy),
            fmt_f64(self.iters_per_sec),
            self.comm_bytes,
            self.staleness,
            fmt_opt(self.plan_cache_hit_rate),
            attr_field,
            actsrv_field,
            health_field,
        )
    }
}

struct SinkState {
    /// Append-mode metrics file, opened lazily from `MSRL_METRICS_FILE`
    /// (or [`set_metrics_file`]).
    file: Option<File>,
    /// Whether the env var has been consulted yet.
    resolved: bool,
    /// Last event per policy, for the text exposition.
    last: BTreeMap<&'static str, RunEvent>,
    /// Total events emitted by this process.
    emitted: u64,
    /// First write error since the last [`flush_metrics`] — emit is
    /// called on the iteration hot loop and cannot return it, so the
    /// error is held (and counted on `sink.io_errors`) until the next
    /// flush surfaces it.
    io_error: Option<std::io::Error>,
}

fn sink() -> &'static Mutex<SinkState> {
    static SINK: OnceLock<Mutex<SinkState>> = OnceLock::new();
    SINK.get_or_init(|| {
        Mutex::new(SinkState {
            file: None,
            resolved: false,
            last: BTreeMap::new(),
            emitted: 0,
            io_error: None,
        })
    })
}

fn open_append(path: &str) -> Option<File> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    OpenOptions::new().create(true).append(true).open(path).ok()
}

/// Points the metrics stream at `path` (append mode), or detaches it
/// with `None`. Overrides `MSRL_METRICS_FILE`; tests use this to write
/// into a temp dir.
pub fn set_metrics_file(path: Option<&str>) {
    let mut s = sink().lock().expect("metrics sink poisoned");
    s.file = path.and_then(open_append);
    s.resolved = true;
}

/// Emits one [`RunEvent`]: appends a JSONL line to the metrics file (if
/// configured) and updates the in-memory last-event table behind
/// [`metrics_text`]. Called once per driver iteration — file I/O cost,
/// not hot-path cost.
pub fn emit_run_event(ev: &RunEvent) {
    let mut s = sink().lock().expect("metrics sink poisoned");
    if !s.resolved {
        s.file = std::env::var("MSRL_METRICS_FILE")
            .ok()
            .filter(|p| !p.is_empty())
            .and_then(|p| open_append(&p));
        s.resolved = true;
    }
    if let Some(f) = &mut s.file {
        // One write per line: O_APPEND keeps concurrent writers from
        // interleaving partial lines. A failed write (full disk, yanked
        // volume) is counted and held for the next flush — losing
        // metrics must itself be observable.
        if let Err(e) = f.write_all(format!("{}\n", ev.to_json_line()).as_bytes()) {
            crate::static_counter!("sink.io_errors").add(1);
            if s.io_error.is_none() {
                s.io_error = Some(e);
            }
        }
    }
    s.emitted += 1;
    s.last.insert(ev.policy, ev.clone());
}

/// Events emitted by this process so far.
pub fn run_events_emitted() -> u64 {
    sink().lock().expect("metrics sink poisoned").emitted
}

fn prom_name(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
}

/// Renders a Prometheus-style text exposition of the whole registry:
/// counters, gauges, histogram quantiles, and the latest [`RunEvent`]
/// per policy. Deterministically ordered (all sources are name-sorted).
pub fn metrics_text() -> String {
    let mut out = String::new();
    out.push_str("# msrl metrics exposition\n");
    for (name, v) in crate::registry::counters_snapshot() {
        out.push_str(&format!("msrl_counter_{} {}\n", prom_name(&name), v));
    }
    for (name, v) in crate::registry::gauges_snapshot() {
        out.push_str(&format!("msrl_gauge_{} {}\n", prom_name(&name), fmt_f64(v)));
    }
    // Real Prometheus histogram series. Bucket `i` of the log₂ layout
    // holds values in `[2^(i-1), 2^i)`, so the inclusive `le` bound of
    // its cumulative line is `2^i - 1` — counts are exact, not
    // interpolated. Empty buckets are elided; cumulative semantics are
    // unaffected by sparse `le` steps.
    for (name, buckets, sum) in crate::histogram::histograms_raw_snapshot() {
        let base = format!("msrl_hist_{}", prom_name(&name));
        out.push_str(&format!("# TYPE {base}_ns histogram\n"));
        let mut cumulative = 0u64;
        for (i, &c) in buckets.iter().enumerate() {
            cumulative += c;
            if c > 0 && i < crate::HISTOGRAM_BUCKETS - 1 {
                let le = if i == 0 { 0 } else { (1u64 << i) - 1 };
                out.push_str(&format!("{base}_ns_bucket{{le=\"{le}\"}} {cumulative}\n"));
            }
        }
        out.push_str(&format!("{base}_ns_bucket{{le=\"+Inf\"}} {cumulative}\n"));
        out.push_str(&format!("{base}_ns_sum {sum}\n"));
        out.push_str(&format!("{base}_ns_count {cumulative}\n"));
        // Legacy quantile-gauge lines, kept for one deprecation cycle.
        let s = crate::HistogramStats::from_buckets(&buckets);
        out.push_str(&format!("{base}_count {}\n", s.count));
        for (q, v) in [("0.5", s.p50_ns), ("0.9", s.p90_ns), ("0.99", s.p99_ns)] {
            out.push_str(&format!("{base}_ns{{quantile=\"{q}\"}} {v}\n"));
        }
    }
    let s = sink().lock().expect("metrics sink poisoned");
    for (policy, ev) in &s.last {
        let l = format!("{{policy=\"{policy}\"}}");
        out.push_str(&format!("msrl_run_iteration{l} {}\n", ev.iteration));
        out.push_str(&format!("msrl_run_reward{l} {}\n", fmt_f64(ev.reward)));
        if let Some(loss) = ev.loss {
            out.push_str(&format!("msrl_run_loss{l} {}\n", fmt_f64(loss)));
        }
        if let Some(e) = ev.entropy {
            out.push_str(&format!("msrl_run_entropy{l} {}\n", fmt_f64(e)));
        }
        out.push_str(&format!("msrl_run_iters_per_sec{l} {}\n", fmt_f64(ev.iters_per_sec)));
        out.push_str(&format!("msrl_run_comm_bytes{l} {}\n", ev.comm_bytes));
    }
    out
}

/// Flushes the metrics stream and, if `MSRL_METRICS_TEXT_FILE` is set,
/// writes the current [`metrics_text`] exposition there. Drivers call
/// this at the end of a run; safe to call repeatedly (the text file is
/// overwritten with the latest snapshot).
///
/// # Errors
///
/// Propagates I/O errors from the flush or the text-file write —
/// including the first write error any earlier [`emit_run_event`] hit
/// (held rather than swallowed; also counted on `sink.io_errors`).
pub fn flush_metrics() -> std::io::Result<()> {
    {
        let mut s = sink().lock().expect("metrics sink poisoned");
        if let Some(e) = s.io_error.take() {
            return Err(e);
        }
        if let Some(f) = &mut s.file {
            f.flush()?;
        }
    }
    if let Ok(path) = std::env::var("MSRL_METRICS_TEXT_FILE") {
        if !path.is_empty() {
            std::fs::write(&path, metrics_text())?;
        }
    }
    Ok(())
}

/// Structurally validates a JSONL metrics stream: every non-empty line
/// must be a [`RunEvent`] object with the right field types (optionals
/// may be `null`). Returns the number of valid lines.
///
/// # Errors
///
/// A description of the first malformed line (1-based line number).
pub fn validate_metrics(content: &str) -> Result<usize, String> {
    use serde_json::Value;
    let mut valid = 0usize;
    for (lineno, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let n = lineno + 1;
        let v = serde_json::value_from_str(line).map_err(|e| format!("line {n}: not JSON: {e}"))?;
        let (v2, v3) = match v.field("schema") {
            Ok(Value::Str(s)) if s == RUN_EVENT_SCHEMA => (false, false),
            Ok(Value::Str(s)) if s == RUN_EVENT_SCHEMA_V2 => (true, false),
            Ok(Value::Str(s)) if s == RUN_EVENT_SCHEMA_V3 => (false, true),
            other => return Err(format!("line {n}: bad schema: {other:?}")),
        };
        match v.field("policy") {
            Ok(Value::Str(p)) if !p.is_empty() => {}
            other => return Err(format!("line {n}: bad policy: {other:?}")),
        }
        for key in ["iteration", "comm_bytes", "staleness"] {
            if !matches!(v.field(key), Ok(Value::I64(_) | Value::U64(_))) {
                return Err(format!("line {n}: missing integer field {key:?}"));
            }
        }
        for key in ["reward", "iters_per_sec"] {
            if !matches!(v.field(key), Ok(Value::I64(_) | Value::U64(_) | Value::F64(_))) {
                return Err(format!("line {n}: missing numeric field {key:?}"));
            }
        }
        for key in ["loss", "entropy", "plan_cache_hit_rate"] {
            match v.field(key) {
                Ok(Value::Null | Value::I64(_) | Value::U64(_) | Value::F64(_)) => {}
                other => return Err(format!("line {n}: bad optional field {key:?}: {other:?}")),
            }
        }
        if let Ok(Value::F64(r)) = v.field("plan_cache_hit_rate") {
            if !(0.0..=1.0).contains(r) {
                return Err(format!("line {n}: plan_cache_hit_rate out of [0,1]: {r}"));
            }
        }
        if v2 {
            validate_attr(&v, n)?;
        } else if !v3 && v.field("attr").is_ok() {
            return Err(format!("line {n}: v1 line must not carry an attr object"));
        }
        if v3 {
            // A v3 line must carry a health block and may also carry an
            // attribution (health presence wins the schema tag).
            validate_health(&v, n)?;
            if v.field("attr").is_ok() {
                validate_attr(&v, n)?;
            }
        } else if v.field("health").is_ok() {
            return Err(format!("line {n}: only v3 lines may carry a health object"));
        }
        if let Ok(actsrv) = v.field("actsrv") {
            let uint = |key: &str| -> Result<u64, String> {
                match actsrv.field(key) {
                    Ok(Value::U64(x)) => Ok(*x),
                    Ok(Value::I64(x)) if *x >= 0 => Ok(*x as u64),
                    other => Err(format!(
                        "line {n}: actsrv field {key:?} not a non-negative int: {other:?}"
                    )),
                }
            };
            let (batches, rows) = (uint("batches")?, uint("rows")?);
            if batches > 0 && rows < batches {
                return Err(format!(
                    "line {n}: actsrv rows ({rows}) below batches ({batches}): every \
                     batched forward covers at least one row"
                ));
            }
        }
        valid += 1;
    }
    Ok(valid)
}

/// Validates the `attr` object of a v2 line: required numeric fields, a
/// known bottleneck label, and per-fragment components that sum exactly
/// to the fragment's wall time (the attribution identity).
fn validate_attr(v: &serde_json::Value, n: usize) -> Result<(), String> {
    use serde_json::Value;
    let Ok(attr) = v.field("attr") else {
        return Err(format!("line {n}: v2 line missing attr object"));
    };
    let uint = |obj: &Value, key: &str| -> Result<u64, String> {
        match obj.field(key) {
            Ok(Value::U64(x)) => Ok(*x),
            Ok(Value::I64(x)) if *x >= 0 => Ok(*x as u64),
            other => Err(format!("line {n}: attr field {key:?} not a non-negative int: {other:?}")),
        }
    };
    for key in [
        "wall_ns",
        "critical_path_ns",
        "rollout_ns",
        "learn_ns",
        "comm_ns",
        "eval_ns",
        "idle_ns",
        "slack_ns",
    ] {
        uint(attr, key)?;
    }
    match attr.field("bottleneck") {
        Ok(Value::Str(b)) if matches!(b.as_str(), "rollout" | "learn" | "comm" | "idle") => {}
        other => return Err(format!("line {n}: bad attr bottleneck: {other:?}")),
    }
    if !matches!(attr.field("cp_clamped"), Ok(Value::Bool(_))) {
        return Err(format!("line {n}: attr missing bool field \"cp_clamped\""));
    }
    // The clamp invariant itself: a reported critical path never
    // exceeds the iteration wall.
    if uint(attr, "critical_path_ns")? > uint(attr, "wall_ns")? {
        return Err(format!("line {n}: critical_path_ns exceeds wall_ns (clamp missing)"));
    }
    let Ok(Value::Seq(frags)) = attr.field("fragments") else {
        return Err(format!("line {n}: attr missing fragments array"));
    };
    for (i, f) in frags.iter().enumerate() {
        match f.field("role") {
            Ok(Value::Str(r)) if !r.is_empty() => {}
            other => return Err(format!("line {n}: fragment {i}: bad role: {other:?}")),
        }
        uint(f, "id")?;
        for key in ["straggler", "critical"] {
            if !matches!(f.field(key), Ok(Value::Bool(_))) {
                return Err(format!("line {n}: fragment {i}: missing bool field {key:?}"));
            }
        }
        let parts: Result<Vec<u64>, String> =
            ["rollout_ns", "learn_ns", "comm_ns", "eval_ns", "idle_ns", "slack_ns"]
                .iter()
                .map(|k| uint(f, k))
                .collect();
        let sum: u64 = parts?.iter().sum();
        let wall = uint(f, "wall_ns")?;
        if sum != wall {
            return Err(format!(
                "line {n}: fragment {i}: components sum to {sum} but wall_ns is {wall}"
            ));
        }
    }
    Ok(())
}

/// Validates the `health` object of a v3 line: a known status label, an
/// explicit non-finite flag, null-or-numeric sentinel gauges, and a
/// findings array of well-formed firings.
fn validate_health(v: &serde_json::Value, n: usize) -> Result<(), String> {
    use serde_json::Value;
    let Ok(health) = v.field("health") else {
        return Err(format!("line {n}: v3 line missing health object"));
    };
    match health.field("status") {
        Ok(Value::Str(s)) if crate::Severity::parse(s).is_some() => {}
        other => return Err(format!("line {n}: bad health status: {other:?}")),
    }
    if !matches!(health.field("nonfinite"), Ok(Value::Bool(_))) {
        return Err(format!("line {n}: health missing bool field \"nonfinite\""));
    }
    for key in ["grad_norm", "weight_norm", "update_ratio", "audit_rel_err"] {
        match health.field(key) {
            Ok(Value::Null | Value::I64(_) | Value::U64(_) | Value::F64(_)) => {}
            other => return Err(format!("line {n}: bad health field {key:?}: {other:?}")),
        }
    }
    match health.field("nonfinite_params") {
        Ok(Value::Null | Value::U64(_)) => {}
        Ok(Value::I64(x)) if *x >= 0 => {}
        other => return Err(format!("line {n}: bad health nonfinite_params: {other:?}")),
    }
    let Ok(Value::Seq(findings)) = health.field("findings") else {
        return Err(format!("line {n}: health missing findings array"));
    };
    for (i, f) in findings.iter().enumerate() {
        match f.field("detector") {
            Ok(Value::Str(d)) if !d.is_empty() => {}
            other => return Err(format!("line {n}: finding {i}: bad detector: {other:?}")),
        }
        match f.field("severity") {
            Ok(Value::Str(s)) if crate::Severity::parse(s).is_some() => {}
            other => return Err(format!("line {n}: finding {i}: bad severity: {other:?}")),
        }
        if !matches!(f.field("iteration"), Ok(Value::I64(_) | Value::U64(_))) {
            return Err(format!("line {n}: finding {i}: missing iteration"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(iteration: u64) -> RunEvent {
        RunEvent {
            policy: "dp_a",
            iteration,
            reward: 21.5,
            loss: Some(0.42),
            entropy: Some(0.69),
            iters_per_sec: 88.0,
            comm_bytes: 13400,
            staleness: 1,
            plan_cache_hit_rate: Some(0.97),
            attr: None,
            actsrv: None,
            health: None,
        }
    }

    fn sample_v2(iteration: u64) -> RunEvent {
        let stamps = vec![
            crate::StepStamp {
                role: "actor",
                fragment: 0,
                class: crate::StepClass::Rollout,
                start_ns: 0,
                end_ns: 95,
            },
            crate::StepStamp {
                role: "learner",
                fragment: 0,
                class: crate::StepClass::Learn,
                start_ns: 0,
                end_ns: 90,
            },
        ];
        RunEvent { attr: Some(crate::attribute(&stamps, 0, 100, 2.0)), ..sample(iteration) }
    }

    #[test]
    fn json_lines_validate() {
        let lines: Vec<String> = (0..3).map(|i| sample(i).to_json_line()).collect();
        let content = lines.join("\n");
        assert_eq!(validate_metrics(&content).expect("valid stream"), 3);
        // Optionals may be null.
        let mut ev = sample(9);
        ev.loss = None;
        ev.entropy = None;
        ev.plan_cache_hit_rate = None;
        assert_eq!(validate_metrics(&ev.to_json_line()).unwrap(), 1);
    }

    #[test]
    fn v2_lines_validate_and_mix_with_v1() {
        let ev = sample_v2(3);
        assert_eq!(ev.schema(), RUN_EVENT_SCHEMA_V2);
        let line = ev.to_json_line();
        assert!(line.contains("\"schema\": \"msrl.run_event.v2\""));
        assert!(line.contains("\"bottleneck\": \"rollout\""));
        assert!(line.contains("\"fragments\": ["));
        let mixed = format!("{}\n{}", sample(2).to_json_line(), line);
        assert_eq!(validate_metrics(&mixed).expect("v1 and v2 both accepted"), 2);
        // A v2 line whose fragment components do not sum to the wall is
        // rejected — the identity is part of the schema.
        let broken = line.replacen("\"rollout_ns\": 95", "\"rollout_ns\": 96", 1);
        assert!(validate_metrics(&broken).is_err());
    }

    fn sample_v3(iteration: u64) -> RunEvent {
        let mut monitor = crate::HealthMonitor::default();
        let health = monitor.observe(&crate::HealthSample {
            iteration,
            reward: 21.5,
            loss: Some(0.42),
            entropy: Some(0.69),
            iters_per_sec: 88.0,
            staleness_bound: 1,
            grad_norm: Some(1.2),
            weight_norm: Some(30.0),
            update_ratio: Some(2e-3),
            nonfinite_params: Some(0),
            ..crate::HealthSample::default()
        });
        RunEvent { health: Some(health), ..sample(iteration) }
    }

    #[test]
    fn v3_lines_validate_and_mix_with_older_schemas() {
        let ev = sample_v3(4);
        assert_eq!(ev.schema(), RUN_EVENT_SCHEMA_V3);
        let line = ev.to_json_line();
        assert!(line.contains("\"schema\": \"msrl.run_event.v3\""));
        assert!(line.contains("\"health\": {\"status\": \"ok\", \"nonfinite\": false"));
        assert!(line.contains("\"findings\": []"));
        let mixed =
            format!("{}\n{}\n{}", sample(1).to_json_line(), sample_v2(2).to_json_line(), line);
        assert_eq!(validate_metrics(&mixed).expect("all three schemas accepted"), 3);
        // Health on v3 may coexist with an attribution.
        let both = RunEvent { health: sample_v3(5).health, ..sample_v2(5) };
        assert_eq!(both.schema(), RUN_EVENT_SCHEMA_V3);
        assert_eq!(validate_metrics(&both.to_json_line()).expect("attr+health validates"), 1);
        // A v1 line must not smuggle a health object.
        let smuggled = sample(6).to_json_line().replacen(
            ", \"plan_cache_hit_rate\"",
            ", \"health\": {\"status\": \"ok\"}, \"plan_cache_hit_rate\"",
            1,
        );
        assert!(validate_metrics(&smuggled).is_err());
        // A bad status label is rejected.
        let bad = line.replacen("\"status\": \"ok\"", "\"status\": \"meh\"", 1);
        assert!(validate_metrics(&bad).is_err());
        // NaN gauges render as null and still validate; the explicit
        // nonfinite flag carries the poison.
        let mut monitor = crate::HealthMonitor::default();
        let health = monitor.observe(&crate::HealthSample {
            iteration: 7,
            reward: 1.0,
            loss: Some(f64::NAN),
            iters_per_sec: 10.0,
            grad_norm: Some(f64::INFINITY),
            nonfinite_params: Some(4),
            ..crate::HealthSample::default()
        });
        assert_eq!(health.status, crate::Severity::Critical);
        let poisoned = RunEvent { health: Some(health), ..sample(7) };
        let pline = poisoned.to_json_line();
        assert!(pline.contains("\"nonfinite\": true"));
        assert!(pline.contains("\"grad_norm\": null"));
        assert!(pline.contains("\"detector\": \"nonfinite\""));
        assert_eq!(validate_metrics(&pline).expect("poisoned line still validates"), 1);
    }

    #[test]
    fn emit_write_error_is_counted_and_surfaced_on_flush() {
        // Point the sink at an unwritable path: open succeeds on a
        // directory-less path? No — use a path that *opens* but cannot
        // be written: /dev/full returns ENOSPC on write on Linux.
        if !std::path::Path::new("/dev/full").exists() {
            return; // not on this platform; covered in CI (Linux)
        }
        let before = crate::counter_total("sink.io_errors");
        set_metrics_file(Some("/dev/full"));
        emit_run_event(&sample(1));
        let err = flush_metrics();
        set_metrics_file(None);
        // The registry and sink are process-global and sibling tests
        // emit concurrently, so assert lower bounds only.
        assert!(crate::counter_total("sink.io_errors") > before);
        assert!(err.is_err(), "held write error surfaces on flush");
    }

    #[test]
    fn actsrv_stats_render_and_validate() {
        let ev = RunEvent { actsrv: Some(ActsrvStats { batches: 32, rows: 192 }), ..sample(4) };
        let line = ev.to_json_line();
        assert!(line.contains("\"actsrv\": {\"batches\": 32, \"rows\": 192}"));
        // Present on v1 lines without a schema bump, absent when None.
        assert!(line.contains("\"schema\": \"msrl.run_event.v1\""));
        assert!(!sample(4).to_json_line().contains("actsrv"));
        let mixed = format!("{}\n{}", line, sample(5).to_json_line());
        assert_eq!(validate_metrics(&mixed).expect("actsrv lines validate"), 2);
        // rows < batches breaks the at-least-one-row-per-forward
        // invariant and is rejected.
        let broken = line.replacen("\"rows\": 192", "\"rows\": 7", 1);
        assert!(validate_metrics(&broken).is_err());
        let bad_type = line.replacen("\"batches\": 32", "\"batches\": \"32\"", 1);
        assert!(validate_metrics(&bad_type).is_err());
    }

    #[test]
    fn prometheus_histogram_series_are_exact() {
        crate::histogram_record("sink.test.promhist", 5); // bucket 3, le 7
        crate::histogram_record("sink.test.promhist", 6);
        crate::histogram_record("sink.test.promhist", 900); // bucket 10, le 1023
        let text = metrics_text();
        assert!(text.contains("# TYPE msrl_hist_sink_test_promhist_ns histogram"));
        assert!(text.contains("msrl_hist_sink_test_promhist_ns_bucket{le=\"7\"} 2"));
        assert!(text.contains("msrl_hist_sink_test_promhist_ns_bucket{le=\"1023\"} 3"));
        assert!(text.contains("msrl_hist_sink_test_promhist_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("msrl_hist_sink_test_promhist_ns_sum 911"));
        assert!(text.contains("msrl_hist_sink_test_promhist_ns_count 3"));
        // Legacy quantile lines survive the deprecation cycle.
        assert!(text.contains("msrl_hist_sink_test_promhist_ns{quantile=\"0.5\"}"));
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(validate_metrics("{\"schema\": \"nope\"}").is_err());
        assert!(validate_metrics("not json at all").is_err());
        let truncated = &sample(0).to_json_line()[..40];
        assert!(validate_metrics(truncated).is_err());
        let bad_rate = sample(0).to_json_line().replace("0.97", "1.97");
        assert!(validate_metrics(&bad_rate).is_err());
    }

    #[test]
    fn emit_updates_text_exposition() {
        emit_run_event(&sample(5));
        assert!(run_events_emitted() >= 1);
        let text = metrics_text();
        assert!(text.contains("msrl_run_iteration{policy=\"dp_a\"}"));
        assert!(text.contains("msrl_run_reward{policy=\"dp_a\"} 21.5"));
    }
}
