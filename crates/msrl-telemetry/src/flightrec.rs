//! Flight recorder: a bounded per-thread ring of recent span/counter
//! events that stays on even when tracing is off, dumped to
//! `results/flightrec-*.json` on panic or driver error for post-mortem
//! debugging.
//!
//! Every span probe notes its name into the calling thread's ring (a
//! fixed array of relaxed atomics — the hot-path cost is one enable
//! check, one timestamp and three relaxed stores), and the cold-path
//! [`counter`](crate::counter) helper notes counter bumps the same way.
//! Hot cached [`Counter`](crate::Counter) handles are *not* hooked —
//! their totals appear in the dump's registry snapshot instead.
//!
//! [`install_panic_hook`] chains onto the existing panic hook, so a
//! panicking worker writes a dump (ring contents from **all** registered
//! threads, counter/gauge/histogram snapshots, the `MSRL_*` environment)
//! before the usual backtrace. Drivers also call
//! [`dump`] on their error paths. Disable with `MSRL_FLIGHTREC=0`.
//!
//! Slot fields are independent relaxed atomics; a dump racing a writer
//! may pair one event's name with a neighbour's timestamp, which is
//! acceptable for a post-mortem ring (names resolve through an intern
//! table, so a torn read never yields an invalid string).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Once, OnceLock};

/// Events retained per thread.
pub const RING_CAPACITY: usize = 256;

const UNSET: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

static FREC_ENABLED: AtomicU8 = AtomicU8::new(UNSET);

/// Whether the flight recorder is active. Resolved from
/// `MSRL_FLIGHTREC` on first call (on unless `0`/`false`/`off`), then a
/// single relaxed atomic load.
#[inline]
pub fn flightrec_enabled() -> bool {
    match FREC_ENABLED.load(Ordering::Relaxed) {
        ON => true,
        OFF => false,
        _ => resolve_enabled(),
    }
}

#[cold]
fn resolve_enabled() -> bool {
    let off = matches!(
        std::env::var("MSRL_FLIGHTREC").as_deref(),
        Ok("0") | Ok("false") | Ok("FALSE") | Ok("off") | Ok("OFF")
    );
    set_flightrec_enabled(!off);
    !off
}

/// Programmatically enables or disables the flight recorder (takes
/// precedence over `MSRL_FLIGHTREC`).
pub fn set_flightrec_enabled(on: bool) {
    FREC_ENABLED.store(if on { ON } else { OFF }, Ordering::Relaxed);
}

/// Event kinds in the ring.
const KIND_SPAN: u64 = 1;
const KIND_COUNT: u64 = 2;

struct Slot {
    /// Pointer identity of an interned `&'static str` name (0 = empty).
    name_ptr: AtomicUsize,
    /// Nanoseconds since the telemetry epoch.
    ts_ns: AtomicU64,
    /// `kind << 56 | arg` (arg: counter delta, truncated to 56 bits).
    meta: AtomicU64,
}

struct ThreadRing {
    tid: u64,
    head: AtomicUsize,
    slots: Vec<Slot>,
}

impl ThreadRing {
    fn new(tid: u64) -> ThreadRing {
        ThreadRing {
            tid,
            head: AtomicUsize::new(0),
            slots: (0..RING_CAPACITY)
                .map(|_| Slot {
                    name_ptr: AtomicUsize::new(0),
                    ts_ns: AtomicU64::new(0),
                    meta: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    #[inline]
    fn push(&self, name_ptr: usize, kind: u64, arg: u64) {
        let idx = self.head.fetch_add(1, Ordering::Relaxed) % RING_CAPACITY;
        let slot = &self.slots[idx];
        slot.name_ptr.store(name_ptr, Ordering::Relaxed);
        slot.ts_ns.store(crate::recorder::now_ns(), Ordering::Relaxed);
        slot.meta.store((kind << 56) | (arg & ((1 << 56) - 1)), Ordering::Relaxed);
    }
}

/// ptr → name table so dumps can resolve names without unsafe
/// reconstruction. Instrumentation names are few and `'static`, so this
/// table is tiny and append-only.
fn name_table() -> &'static Mutex<BTreeMap<usize, &'static str>> {
    static TABLE: OnceLock<Mutex<BTreeMap<usize, &'static str>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn intern_name(name: &'static str) -> usize {
    let ptr = name.as_ptr() as usize;
    thread_local! {
        static SEEN: std::cell::RefCell<std::collections::HashSet<usize>> =
            std::cell::RefCell::new(std::collections::HashSet::new());
    }
    let known = SEEN.try_with(|s| s.borrow().contains(&ptr)).unwrap_or(true);
    if !known {
        name_table().lock().expect("flightrec name table poisoned").insert(ptr, name);
        let _ = SEEN.try_with(|s| {
            s.borrow_mut().insert(ptr);
        });
    }
    ptr
}

/// Interns a non-`'static` name (cold counter paths) by leaking one
/// copy per distinct string — bounded by the instrumentation name set.
fn intern_dyn(name: &str) -> usize {
    static BY_NAME: OnceLock<Mutex<BTreeMap<String, usize>>> = OnceLock::new();
    let by_name = BY_NAME.get_or_init(|| Mutex::new(BTreeMap::new()));
    let mut m = by_name.lock().expect("flightrec dyn name table poisoned");
    if let Some(&ptr) = m.get(name) {
        return ptr;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    let ptr = leaked.as_ptr() as usize;
    name_table().lock().expect("flightrec name table poisoned").insert(ptr, leaked);
    m.insert(leaked.to_string(), ptr);
    ptr
}

fn rings() -> &'static Mutex<Vec<Arc<ThreadRing>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<ThreadRing>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL_RING: Arc<ThreadRing> = {
        let ring = Arc::new(ThreadRing::new(crate::recorder::current_tid()));
        rings().lock().expect("flightrec rings poisoned").push(Arc::clone(&ring));
        ring
    };
}

/// Notes a span open on the calling thread's ring (called by every span
/// probe, enabled or not; one relaxed load when the recorder is off).
#[inline]
pub(crate) fn note_span(name: &'static str) {
    if !flightrec_enabled() {
        return;
    }
    let ptr = intern_name(name);
    let _ = LOCAL_RING.try_with(|r| r.push(ptr, KIND_SPAN, 0));
}

/// Notes a cold-path counter bump on the calling thread's ring.
#[inline]
pub(crate) fn note_count(name: &str, delta: u64) {
    if !flightrec_enabled() {
        return;
    }
    let ptr = intern_dyn(name);
    let _ = LOCAL_RING.try_with(|r| r.push(ptr, KIND_COUNT, delta));
}

/// One resolved ring entry in a dump.
#[derive(Debug, Clone)]
pub struct FlightEvent {
    /// Telemetry lane id of the recording thread.
    pub tid: u64,
    /// Nanoseconds since the telemetry epoch.
    pub ts_ns: u64,
    /// `"span"` or `"count"`.
    pub kind: &'static str,
    /// Span/counter name.
    pub name: String,
    /// Counter delta (0 for spans).
    pub arg: u64,
}

/// Snapshots every registered thread ring, oldest-first per thread,
/// merged and sorted by timestamp.
pub fn snapshot_events() -> Vec<FlightEvent> {
    let names = name_table().lock().expect("flightrec name table poisoned").clone();
    let rings = rings().lock().expect("flightrec rings poisoned").clone();
    let mut out = Vec::new();
    for ring in rings {
        let head = ring.head.load(Ordering::Relaxed);
        let filled = head.min(RING_CAPACITY);
        for k in 0..filled {
            // Oldest retained slot first.
            let idx = if head <= RING_CAPACITY { k } else { (head + k) % RING_CAPACITY };
            let slot = &ring.slots[idx];
            let ptr = slot.name_ptr.load(Ordering::Relaxed);
            let Some(name) = names.get(&ptr) else { continue };
            let meta = slot.meta.load(Ordering::Relaxed);
            out.push(FlightEvent {
                tid: ring.tid,
                ts_ns: slot.ts_ns.load(Ordering::Relaxed),
                kind: if meta >> 56 == KIND_COUNT { "count" } else { "span" },
                name: (*name).to_string(),
                arg: meta & ((1 << 56) - 1),
            });
        }
    }
    out.sort_by_key(|e| e.ts_ns);
    out
}

static DUMP_DIR: Mutex<Option<String>> = Mutex::new(None);
static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Overrides the dump directory (default `results`, created on demand).
/// Tests point this at a temp dir.
pub fn set_dump_dir(dir: &str) {
    *DUMP_DIR.lock().expect("flightrec dump dir poisoned") = Some(dir.to_string());
}

fn dump_dir() -> String {
    DUMP_DIR
        .lock()
        .expect("flightrec dump dir poisoned")
        .clone()
        .unwrap_or_else(|| "results".to_string())
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the dump JSON: ring events, counter/gauge/histogram
/// snapshots, and the `MSRL_*` environment.
pub fn render_dump(trigger: &str, reason: &str) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"msrl.flightrec.v1\",\n");
    out.push_str(&format!("  \"trigger\": \"{}\",\n", esc(trigger)));
    out.push_str(&format!("  \"reason\": \"{}\",\n", esc(reason)));
    out.push_str(&format!("  \"pid\": {},\n", std::process::id()));
    // The run's latest health verdict, when the watchdog has stored one
    // (a critical detector firing is itself a dump trigger): the
    // post-mortem carries *why* training was judged unhealthy.
    if let Some(verdict) = crate::health::last_verdict_json() {
        out.push_str(&format!("  \"health\": {verdict},\n"));
    }
    out.push_str("  \"config\": {");
    let mut env: Vec<(String, String)> =
        std::env::vars().filter(|(k, _)| k.starts_with("MSRL_")).collect();
    env.sort();
    for (i, (k, v)) in env.iter().enumerate() {
        out.push_str(&format!(
            "\n    \"{}\": \"{}\"{}",
            esc(k),
            esc(v),
            if i + 1 == env.len() { "\n  " } else { "," }
        ));
    }
    out.push_str("},\n  \"events\": [\n");
    let events = snapshot_events();
    for (i, e) in events.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"tid\": {}, \"ts_ns\": {}, \"kind\": \"{}\", \"name\": \"{}\", \"arg\": {}}}{}\n",
            e.tid,
            e.ts_ns,
            e.kind,
            esc(&e.name),
            e.arg,
            if i + 1 == events.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"counters\": {");
    let counters = crate::registry::counters_snapshot();
    for (i, (name, v)) in counters.iter().enumerate() {
        out.push_str(&format!(
            "\n    \"{}\": {}{}",
            esc(name),
            v,
            if i + 1 == counters.len() { "\n  " } else { "," }
        ));
    }
    out.push_str("},\n  \"gauges\": {");
    let gauges = crate::registry::gauges_snapshot();
    for (i, (name, v)) in gauges.iter().enumerate() {
        let v = if v.is_finite() { format!("{v:.3}") } else { "null".to_string() };
        out.push_str(&format!(
            "\n    \"{}\": {}{}",
            esc(name),
            v,
            if i + 1 == gauges.len() { "\n  " } else { "," }
        ));
    }
    out.push_str("},\n  \"histograms\": {");
    // Name-sorted quantile state plus the raw log₂ buckets (non-zero
    // only) and exact sum, so a post-mortem carries the full
    // distribution as recorded at crash time, not just estimates.
    let hists = crate::histogram::histograms_raw_snapshot();
    for (i, (name, buckets, sum)) in hists.iter().enumerate() {
        let s = crate::HistogramStats::from_buckets(buckets);
        let raw: Vec<String> = buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| format!("\"{b}\": {c}"))
            .collect();
        out.push_str(&format!(
            "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}, \"buckets\": {{{}}}}}{}",
            esc(name),
            s.count,
            sum,
            s.p50_ns,
            s.p90_ns,
            s.p99_ns,
            s.max_ns,
            raw.join(", "),
            if i + 1 == hists.len() { "\n  " } else { "," }
        ));
    }
    out.push_str("}\n}\n");
    out
}

/// Writes a flight-recorder dump to
/// `<dump dir>/flightrec-<pid>-<seq>.json` and returns the path, or
/// `Ok(None)` when the recorder is disabled.
///
/// # Errors
///
/// Propagates the I/O error when the directory or file cannot be
/// written.
pub fn dump(trigger: &str, reason: &str) -> std::io::Result<Option<String>> {
    if !flightrec_enabled() {
        return Ok(None);
    }
    let dir = dump_dir();
    std::fs::create_dir_all(&dir)?;
    let seq = DUMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let path = format!("{dir}/flightrec-{}-{seq}.json", std::process::id());
    std::fs::write(&path, render_dump(trigger, reason))?;
    Ok(Some(path))
}

/// Installs a process-wide panic hook (idempotent) that writes a
/// flight-recorder dump before chaining to the previous hook. Drivers
/// call this at entry so a panicking worker leaves post-mortem state on
/// disk.
pub fn install_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let _ = dump("panic", &info.to_string());
            prev(info);
        }));
    });
}

/// Structural check of a dump file's JSON: required keys, event-entry
/// shape, non-negative timestamps. Returns the event count.
///
/// # Errors
///
/// A human-readable description of the first violation.
pub fn validate_flightrec(content: &str) -> Result<usize, String> {
    use serde_json::Value;
    let v = serde_json::value_from_str(content).map_err(|e| format!("not JSON: {e}"))?;
    let str_field = |key: &str| -> Result<String, String> {
        match v.field(key) {
            Ok(Value::Str(s)) => Ok(s.clone()),
            _ => Err(format!("missing string field {key:?}")),
        }
    };
    let schema = str_field("schema")?;
    if schema != "msrl.flightrec.v1" {
        return Err(format!("bad schema field: {schema:?}"));
    }
    str_field("trigger")?;
    str_field("reason")?;
    for key in ["config", "counters", "gauges", "histograms"] {
        if !matches!(v.field(key), Ok(Value::Map(_))) {
            return Err(format!("missing object field {key:?}"));
        }
    }
    if let Ok(Value::Map(hists)) = v.field("histograms") {
        for (name, h) in hists {
            for key in ["count", "sum"] {
                if !matches!(h.field(key), Ok(Value::I64(_) | Value::U64(_))) {
                    return Err(format!("histogram {name:?}: missing numeric field {key:?}"));
                }
            }
            if !matches!(h.field("buckets"), Ok(Value::Map(_))) {
                return Err(format!("histogram {name:?}: missing buckets object"));
            }
        }
    }
    let Ok(Value::Seq(events)) = v.field("events") else {
        return Err("missing events array".to_string());
    };
    for (i, e) in events.iter().enumerate() {
        for key in ["tid", "ts_ns", "arg"] {
            if !matches!(e.field(key), Ok(Value::I64(_) | Value::U64(_))) {
                return Err(format!("event {i}: missing numeric field {key:?}"));
            }
        }
        match e.field("kind") {
            Ok(Value::Str(k)) if k == "span" || k == "count" => {}
            other => return Err(format!("event {i}: bad kind {other:?}")),
        }
        if !matches!(e.field("name"), Ok(Value::Str(_))) {
            return Err(format!("event {i}: missing name"));
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One body: the enable flag is process-wide and sibling tests run
    /// on parallel threads.
    #[test]
    fn ring_records_bounds_and_dump_validates() {
        set_flightrec_enabled(false);
        note_span("flightrec.test.disabled");
        assert!(!snapshot_events().iter().any(|e| e.name == "flightrec.test.disabled"));

        set_flightrec_enabled(true);
        note_span("flightrec.test.span");
        note_count("flightrec.test.count", 3);
        let events = snapshot_events();
        assert!(events.iter().any(|e| e.name == "flightrec.test.span" && e.kind == "span"));
        assert!(events
            .iter()
            .any(|e| e.name == "flightrec.test.count" && e.kind == "count" && e.arg == 3));
        crate::histogram_record("flightrec.test.hist", 12);
        let json = render_dump("test", "unit test");
        let n = validate_flightrec(&json).expect("dump validates");
        assert!(n >= 2);
        assert!(
            json.contains("\"flightrec.test.hist\": {\"count\": 1, \"sum\": 12,"),
            "dump carries raw histogram state"
        );
        assert!(json.contains("\"buckets\": {\"4\": 1}"), "12 lands in bucket 4");

        for _ in 0..(RING_CAPACITY * 3) {
            note_span("flightrec.test.flood");
        }
        let per_thread: std::collections::HashMap<u64, usize> =
            snapshot_events().iter().fold(std::collections::HashMap::new(), |mut m, e| {
                *m.entry(e.tid).or_default() += 1;
                m
            });
        assert!(per_thread.values().all(|&n| n <= RING_CAPACITY), "ring is bounded");
    }
}
