//! Chrome trace-event export and schema validation.
//!
//! [`chrome_trace`] serialises a drained event stream into the JSON
//! Trace Event Format that Perfetto and `chrome://tracing` load. Each
//! recording thread becomes one duration lane (`ph: "B"/"E"`), and every
//! span labelled with a fragment id additionally appears on an async
//! lane (`ph: "b"/"e"`, `cat: "fragment"`) keyed by that id — so the
//! timeline shows both *where* (which worker thread) and *what* (which
//! fragment) the time went to.
//!
//! [`validate_chrome_trace`] parses a trace back and checks the schema
//! invariants tests and CI rely on: every `B` has a matching `E` on the
//! same thread in LIFO order, every async `b` has its `e`, and
//! timestamps are present, non-negative and ordered within each pair.

use serde_json::Value;
use std::collections::HashMap;

use crate::recorder::{Event, Phase};

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn push_common(out: &mut String, name: &str, cat: &str, ph: char, tid: u64, ts_ns: u64) {
    out.push_str("{\"name\":\"");
    escape(name, out);
    out.push_str("\",\"cat\":\"");
    out.push_str(cat);
    out.push_str("\",\"ph\":\"");
    out.push(ph);
    out.push_str(&format!("\",\"pid\":1,\"tid\":{tid},\"ts\":{:.3}", ts_ns as f64 / 1e3));
}

/// Serialises events into Chrome trace-event JSON (microsecond
/// timestamps, one duration lane per recording thread, async lanes per
/// fragment id).
pub fn chrome_trace(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 256);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"msrl\"}}");
    let mut named: Vec<u64> = Vec::new();
    for e in events {
        if !named.contains(&e.tid) {
            named.push(e.tid);
            out.push_str(&format!(
                ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"worker-{}\"}}}}",
                e.tid, e.tid
            ));
        }
        let ph = match e.phase {
            Phase::Begin => 'B',
            Phase::End => 'E',
        };
        out.push_str(",\n");
        push_common(&mut out, e.name, "msrl", ph, e.tid, e.ts_ns);
        if let (Phase::Begin, Some(id)) = (e.phase, e.id) {
            out.push_str(&format!(",\"args\":{{\"id\":{id}}}"));
        }
        out.push('}');
        // Fragment-labelled spans get an async lane keyed by their id.
        if let Some(id) = e.id {
            if e.name.starts_with("fragment") {
                let aph = match e.phase {
                    Phase::Begin => 'b',
                    Phase::End => 'e',
                };
                out.push_str(",\n");
                push_common(&mut out, e.name, "fragment", aph, e.tid, e.ts_ns);
                out.push_str(&format!(",\"id\":\"{id}\"}}"));
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

/// What [`validate_chrome_trace`] measured while checking a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCheck {
    /// Total trace events (metadata included).
    pub events: usize,
    /// Matched thread-lane `B`/`E` pairs.
    pub span_pairs: usize,
    /// Matched async-lane `b`/`e` pairs.
    pub async_pairs: usize,
    /// `B` events whose span name starts with `fragment`.
    pub fragment_spans: usize,
}

fn get<'v>(map: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn as_str(v: &Value) -> Option<&str> {
    match v {
        Value::Str(s) => Some(s),
        _ => None,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::F64(f) => Some(*f),
        Value::I64(i) => Some(*i as f64),
        Value::U64(u) => Some(*u as f64),
        _ => None,
    }
}

/// Parses a Chrome trace produced by [`chrome_trace`] (or anything
/// schema-compatible) and checks its structural invariants.
///
/// # Errors
///
/// Returns a description of the first violation: unparsable JSON, a
/// missing field, an `E` without a matching `B` (or mismatched name), a
/// negative or out-of-order timestamp, or an unbalanced async pair.
pub fn validate_chrome_trace(json: &str) -> Result<TraceCheck, String> {
    let root = serde_json::value_from_str(json).map_err(|e| format!("unparsable JSON: {e}"))?;
    let events = match &root {
        Value::Seq(items) => items,
        Value::Map(entries) => match get(entries, "traceEvents") {
            Some(Value::Seq(items)) => items,
            _ => return Err("top-level object lacks a traceEvents array".into()),
        },
        _ => return Err("trace must be an array or an object".into()),
    };

    let mut check = TraceCheck { events: events.len(), ..TraceCheck::default() };
    // Per-thread open-span stacks: (name, ts).
    let mut stacks: HashMap<u64, Vec<(String, f64)>> = HashMap::new();
    // Async balance per (cat, id, name): (+opens, last open ts).
    let mut async_open: HashMap<(String, String, String), Vec<f64>> = HashMap::new();

    for (i, ev) in events.iter().enumerate() {
        let Value::Map(fields) = ev else {
            return Err(format!("event {i} is not an object"));
        };
        let ph = get(fields, "ph")
            .and_then(as_str)
            .ok_or_else(|| format!("event {i} lacks a ph field"))?;
        if ph == "M" {
            continue; // metadata
        }
        let name = get(fields, "name")
            .and_then(as_str)
            .ok_or_else(|| format!("event {i} lacks a name"))?
            .to_string();
        let ts = get(fields, "ts")
            .and_then(as_f64)
            .ok_or_else(|| format!("event {i} ({name}) lacks a ts"))?;
        if ts < 0.0 {
            return Err(format!("event {i} ({name}) has negative ts {ts}"));
        }
        match ph {
            "B" | "E" => {
                let tid = get(fields, "tid")
                    .and_then(as_f64)
                    .ok_or_else(|| format!("event {i} ({name}) lacks a tid"))?
                    as u64;
                let stack = stacks.entry(tid).or_default();
                if ph == "B" {
                    if name.starts_with("fragment") {
                        check.fragment_spans += 1;
                    }
                    stack.push((name, ts));
                } else {
                    let Some((open_name, open_ts)) = stack.pop() else {
                        return Err(format!(
                            "event {i}: E \"{name}\" with no open span on tid {tid}"
                        ));
                    };
                    if open_name != name {
                        return Err(format!(
                            "event {i}: E \"{name}\" closes \"{open_name}\" on tid {tid}"
                        ));
                    }
                    if ts < open_ts {
                        return Err(format!("event {i}: span \"{name}\" ends before it begins"));
                    }
                    check.span_pairs += 1;
                }
            }
            "b" | "e" => {
                let cat = get(fields, "cat").and_then(as_str).unwrap_or("").to_string();
                let id = match get(fields, "id") {
                    Some(Value::Str(s)) => s.clone(),
                    Some(v) => as_f64(v).map(|f| f.to_string()).unwrap_or_default(),
                    None => return Err(format!("event {i} ({name}): async event lacks an id")),
                };
                let key = (cat, id, name.clone());
                if ph == "b" {
                    async_open.entry(key).or_default().push(ts);
                } else {
                    let Some(opens) = async_open.get_mut(&key) else {
                        return Err(format!("event {i}: e \"{name}\" with no open async span"));
                    };
                    let Some(open_ts) = opens.pop() else {
                        return Err(format!("event {i}: e \"{name}\" with no open async span"));
                    };
                    if ts < open_ts {
                        return Err(format!("event {i}: async \"{name}\" ends before it begins"));
                    }
                    check.async_pairs += 1;
                }
            }
            other => return Err(format!("event {i} ({name}) has unsupported ph \"{other}\"")),
        }
    }
    for (tid, stack) in &stacks {
        if let Some((name, _)) = stack.last() {
            return Err(format!("span \"{name}\" on tid {tid} never ends"));
        }
    }
    for ((_, id, name), opens) in &async_open {
        if !opens.is_empty() {
            return Err(format!("async span \"{name}\" (id {id}) never ends"));
        }
    }
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, phase: Phase, ts_ns: u64, tid: u64, id: Option<u64>) -> Event {
        Event { name, phase, ts_ns, tid, id }
    }

    #[test]
    fn round_trip_validates() {
        let events = vec![
            ev("fragment.eval", Phase::Begin, 1_000, 1, Some(4)),
            ev("interp.macro", Phase::Begin, 2_000, 1, None),
            ev("interp.macro", Phase::End, 3_000, 1, None),
            ev("fragment.eval", Phase::End, 9_000, 1, Some(4)),
            ev("comm.send", Phase::Begin, 2_500, 2, None),
            ev("comm.send", Phase::End, 2_600, 2, None),
        ];
        let trace = chrome_trace(&events);
        let check = validate_chrome_trace(&trace).unwrap();
        assert_eq!(check.span_pairs, 3);
        assert_eq!(check.async_pairs, 1);
        assert_eq!(check.fragment_spans, 1);
    }

    #[test]
    fn unbalanced_span_is_rejected() {
        let events = vec![ev("lonely", Phase::Begin, 10, 1, None)];
        let trace = chrome_trace(&events);
        let err = validate_chrome_trace(&trace).unwrap_err();
        assert!(err.contains("never ends"), "{err}");
    }

    #[test]
    fn mismatched_nesting_is_rejected() {
        let trace = r#"[
            {"name":"a","ph":"B","tid":1,"ts":1.0},
            {"name":"b","ph":"B","tid":1,"ts":2.0},
            {"name":"a","ph":"E","tid":1,"ts":3.0},
            {"name":"b","ph":"E","tid":1,"ts":4.0}
        ]"#;
        assert!(validate_chrome_trace(trace).is_err());
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":3}").is_err());
    }
}
