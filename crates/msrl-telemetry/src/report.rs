//! Aggregated summaries: per-span latency percentiles plus counter and
//! gauge snapshots, renderable as aligned text or JSON.

use std::collections::HashMap;

use crate::recorder::{Event, Phase};
use crate::registry;

/// Nearest-rank percentile of an ascending-sorted duration list.
/// `percentile_ns(&d, 50.0)` is the median, `percentile_ns(&d, 99.0)`
/// the p99; an empty list yields 0.
pub fn percentile_ns(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Aggregated durations of one span name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStats {
    /// Span name.
    pub name: String,
    /// Completed (matched Begin/End) occurrences.
    pub count: u64,
    /// Sum of durations, ns.
    pub total_ns: u64,
    /// Median duration, ns.
    pub p50_ns: u64,
    /// 99th-percentile duration, ns.
    pub p99_ns: u64,
    /// Longest duration, ns.
    pub max_ns: u64,
}

/// A full telemetry summary.
#[derive(Debug, Clone, Default)]
pub struct TelemetryReport {
    /// Per-span aggregates, sorted by total time descending.
    pub spans: Vec<SpanStats>,
    /// Counter totals at summary time, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Gauge readings at summary time, name-sorted.
    pub gauges: Vec<(String, f64)>,
    /// Always-on histogram quantiles at summary time, name-sorted.
    /// Present without tracing — these come from the registry, not the
    /// span event stream.
    pub histograms: Vec<(String, crate::HistogramStats)>,
}

impl TelemetryReport {
    /// Aggregates a drained event stream (events must be per-thread
    /// ordered, which [`crate::drain`] guarantees). Unmatched boundaries
    /// are skipped.
    pub fn from_events(events: &[Event]) -> TelemetryReport {
        // Open-span stacks per thread; durations per span name.
        let mut stacks: HashMap<u64, Vec<(&'static str, u64)>> = HashMap::new();
        let mut durations: HashMap<&'static str, Vec<u64>> = HashMap::new();
        for e in events {
            let stack = stacks.entry(e.tid).or_default();
            match e.phase {
                Phase::Begin => stack.push((e.name, e.ts_ns)),
                Phase::End => {
                    if let Some(&(name, begin)) = stack.last() {
                        if name == e.name {
                            stack.pop();
                            durations.entry(name).or_default().push(e.ts_ns.saturating_sub(begin));
                        }
                    }
                }
            }
        }
        let mut spans: Vec<SpanStats> = durations
            .into_iter()
            .map(|(name, mut d)| {
                d.sort_unstable();
                SpanStats {
                    name: name.to_string(),
                    count: d.len() as u64,
                    total_ns: d.iter().sum(),
                    p50_ns: percentile_ns(&d, 50.0),
                    p99_ns: percentile_ns(&d, 99.0),
                    max_ns: *d.last().unwrap_or(&0),
                }
            })
            .collect();
        spans.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
        TelemetryReport { spans, counters: Vec::new(), gauges: Vec::new(), histograms: Vec::new() }
    }

    /// Attaches the current counter, gauge and histogram registry
    /// snapshots (histograms with zero observations are dropped).
    #[must_use]
    pub fn with_registry(mut self) -> Self {
        self.counters = registry::counters_snapshot();
        self.gauges = registry::gauges_snapshot();
        self.histograms = crate::histogram::histograms_snapshot()
            .into_iter()
            .filter(|(_, s)| s.count > 0)
            .collect();
        self
    }

    /// Looks up one span's aggregate by name.
    pub fn span(&self, name: &str) -> Option<&SpanStats> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Looks up one counter total by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Looks up one histogram's quantiles by name.
    pub fn histogram(&self, name: &str) -> Option<&crate::HistogramStats> {
        self.histograms.iter().find(|(k, _)| k == name).map(|(_, s)| s)
    }

    /// Renders an aligned text table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>9} {:>13} {:>12} {:>12} {:>12}\n",
            "span", "count", "total ms", "p50 us", "p99 us", "max us"
        ));
        for s in &self.spans {
            out.push_str(&format!(
                "{:<28} {:>9} {:>13.3} {:>12.1} {:>12.1} {:>12.1}\n",
                s.name,
                s.count,
                s.total_ns as f64 / 1e6,
                s.p50_ns as f64 / 1e3,
                s.p99_ns as f64 / 1e3,
                s.max_ns as f64 / 1e3,
            ));
        }
        if !self.histograms.is_empty() {
            out.push_str(&format!(
                "{:<28} {:>9} {:>12} {:>12} {:>12} {:>12}\n",
                "histogram", "count", "p50 us", "p90 us", "p99 us", "max us"
            ));
            for (name, s) in &self.histograms {
                out.push_str(&format!(
                    "{:<28} {:>9} {:>12.1} {:>12.1} {:>12.1} {:>12.1}\n",
                    name,
                    s.count,
                    s.p50_ns as f64 / 1e3,
                    s.p90_ns as f64 / 1e3,
                    s.p99_ns as f64 / 1e3,
                    s.max_ns as f64 / 1e3,
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str(&format!("{:<40} {:>16}\n", "counter", "total"));
            for (name, v) in &self.counters {
                out.push_str(&format!("{name:<40} {v:>16}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str(&format!("{:<40} {:>16}\n", "gauge", "value"));
            for (name, v) in &self.gauges {
                out.push_str(&format!("{name:<40} {v:>16.1}\n"));
            }
        }
        out
    }

    /// Serialises the report as JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"spans\": [\n");
        for (i, s) in self.spans.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"count\": {}, \"total_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}{}\n",
                s.name,
                s.count,
                s.total_ns,
                s.p50_ns,
                s.p99_ns,
                s.max_ns,
                if i + 1 == self.spans.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n  \"histograms\": {");
        for (i, (name, s)) in self.histograms.iter().enumerate() {
            out.push_str(&format!(
                "\n    \"{name}\": {{\"count\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}{}",
                s.count,
                s.p50_ns,
                s.p90_ns,
                s.p99_ns,
                s.max_ns,
                if i + 1 == self.histograms.len() { "\n  " } else { "," }
            ));
        }
        out.push_str("},\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            out.push_str(&format!(
                "\n    \"{name}\": {v}{}",
                if i + 1 == self.counters.len() { "\n  " } else { "," }
            ));
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            out.push_str(&format!(
                "\n    \"{name}\": {v:.3}{}",
                if i + 1 == self.gauges.len() { "\n  " } else { "," }
            ));
        }
        out.push_str("}\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_on_known_sequence() {
        // 1..=100 ns: median 50, p99 99, p100 100.
        let d: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_ns(&d, 50.0), 50);
        assert_eq!(percentile_ns(&d, 99.0), 99);
        assert_eq!(percentile_ns(&d, 100.0), 100);
        assert_eq!(percentile_ns(&d, 0.0), 1);
        assert_eq!(percentile_ns(&[], 50.0), 0);
        assert_eq!(percentile_ns(&[7], 99.0), 7);
    }

    #[test]
    fn aggregates_known_event_sequence() {
        // Three "work" spans of 10, 20 and 90 ns plus one nested "inner".
        let mk = |name: &'static str, phase, ts_ns| Event { name, phase, ts_ns, tid: 1, id: None };
        let events = vec![
            mk("work", Phase::Begin, 0),
            mk("work", Phase::End, 10),
            mk("work", Phase::Begin, 100),
            mk("inner", Phase::Begin, 105),
            mk("inner", Phase::End, 108),
            mk("work", Phase::End, 120),
            mk("work", Phase::Begin, 200),
            mk("work", Phase::End, 290),
        ];
        let report = TelemetryReport::from_events(&events);
        let work = report.span("work").unwrap();
        assert_eq!(work.count, 3);
        assert_eq!(work.total_ns, 10 + 20 + 90);
        assert_eq!(work.p50_ns, 20);
        assert_eq!(work.p99_ns, 90);
        assert_eq!(work.max_ns, 90);
        assert_eq!(report.span("inner").unwrap().total_ns, 3);
        // Spans sort by total time descending.
        assert_eq!(report.spans[0].name, "work");
        let text = report.render_text();
        assert!(text.contains("work") && text.contains("inner"));
    }

    #[test]
    fn json_is_parseable() {
        let events = vec![
            Event { name: "a", phase: Phase::Begin, ts_ns: 0, tid: 1, id: None },
            Event { name: "a", phase: Phase::End, ts_ns: 5, tid: 1, id: None },
        ];
        let json = TelemetryReport::from_events(&events).with_registry().to_json();
        serde_json::value_from_str(&json).expect("report JSON parses");
    }
}
