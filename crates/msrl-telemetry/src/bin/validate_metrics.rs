//! CI schema check for observability artefacts.
//!
//! `validate_metrics <file>...` — each argument is a run-metrics JSONL
//! file (validated line by line as `RunEvent`s) or a
//! `flightrec-*.json` dump (validated structurally). Missing files are
//! skipped with a notice (e2e jobs only produce them when the env vars
//! are set); any malformed file fails the build.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: validate_metrics <metrics.jsonl | flightrec-*.json>...");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in &args {
        let content = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(_) => {
                println!("validate_metrics: {path}: missing, skipped");
                continue;
            }
        };
        let is_flightrec = std::path::Path::new(path)
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with("flightrec-"));
        let outcome = if is_flightrec {
            msrl_telemetry::validate_flightrec(&content).map(|n| format!("{n} ring events"))
        } else {
            msrl_telemetry::validate_metrics(&content).map(|n| format!("{n} run events"))
        };
        match outcome {
            Ok(what) => println!("validate_metrics: {path}: OK ({what})"),
            Err(e) => {
                eprintln!("validate_metrics: {path}: INVALID: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
