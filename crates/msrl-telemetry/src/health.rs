//! Training-health watchdog: streaming detectors over the per-iteration
//! [`RunEvent`](crate::RunEvent) signal (DESIGN §3.15).
//!
//! PRs 2/5/7 made runs observable in *time*; this module watches whether
//! training is *healthy*. A [`HealthMonitor`] consumes one
//! [`HealthSample`] per iteration — the same numbers the metrics stream
//! carries, plus the numeric sentinels the drivers compute (non-finite
//! parameter counts, gradient/weight norms, tier-2 shadow-audit drift) —
//! and runs a bank of streaming detectors:
//!
//! * **nonfinite** — NaN/Inf in loss, reward, entropy, gradient norm or
//!   the parameter vector itself (critical, fires on the first sample);
//! * **entropy_collapse** — policy entropy EWMA falling below a fraction
//!   of its post-warmup baseline (warn);
//! * **grad_explosion** — a finite gradient-norm spike far above its
//!   EWMA (warn; a *non-finite* norm is the nonfinite detector's job);
//! * **reward_regression** — reward EWMA falling well below the best
//!   EWMA the run has reached (warn);
//! * **tput_regression** — iterations/second EWMA collapsing below a
//!   fraction of its peak (warn);
//! * **staleness_breach** — observed weight staleness above the
//!   configured bound (critical; the drivers enforce the bound by
//!   construction, so a firing means the invariant broke);
//! * **audit_drift** — tier-2 shadow-audit relative error above the
//!   tolerance bound (critical): every `MSRL_AUDIT_EVERY` iterations one
//!   sampled fragment forward is re-run at tier 1 and compared, turning
//!   the one-shot fast-math tolerance test into a live empirical bound.
//!
//! Each detector is an EWMA + hysteresis window in the shape of
//! `advisor::LiveAdvisor`: a breach must persist for `confirm`
//! consecutive samples to fire, a firing is reported **exactly once**,
//! and the detector re-arms only after `rearm` consecutive healthy
//! samples — sub-hysteresis noise produces no findings at all.
//!
//! Firings accumulate into a [`HealthVerdict`]; the drivers embed the
//! latest verdict in flight-recorder dumps (a critical firing triggers
//! one automatically) and stamp each RunEvent with a per-iteration
//! health block, bumping the line to schema v3. [`replay_stream`] runs
//! the same detectors over a completed JSONL stream — the engine behind
//! the `doctor` bin's post-hoc verdict report.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

// ---------------------------------------------------------------------------
// Gates and cross-thread plumbing
// ---------------------------------------------------------------------------

const UNSET: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

static HEALTH: AtomicU8 = AtomicU8::new(UNSET);

/// Whether the health watchdog is active (default **on**). Resolved from
/// `MSRL_HEALTH` on first call (`0`/`off`/`false`/`no` disable it), then
/// one relaxed atomic load.
#[inline]
pub fn health_enabled() -> bool {
    match HEALTH.load(Ordering::Relaxed) {
        ON => true,
        OFF => false,
        _ => resolve_health(),
    }
}

#[cold]
fn resolve_health() -> bool {
    let off = matches!(
        std::env::var("MSRL_HEALTH").as_deref(),
        Ok("0") | Ok("off") | Ok("OFF") | Ok("false") | Ok("FALSE") | Ok("no") | Ok("NO")
    );
    set_health_enabled(!off);
    !off
}

/// Programmatically enables or disables the health watchdog (takes
/// precedence over `MSRL_HEALTH`).
pub fn set_health_enabled(on: bool) {
    HEALTH.store(if on { ON } else { OFF }, Ordering::Relaxed);
}

/// `u64::MAX` marks "not yet resolved from the environment".
static AUDIT_EVERY: AtomicU64 = AtomicU64::new(u64::MAX);

/// The tier-2 shadow-audit period: every this many iterations the
/// drivers request one dual-tier fragment forward. Resolved from
/// `MSRL_AUDIT_EVERY` on first call; `0` (the default) disables audits.
pub fn audit_every() -> u64 {
    match AUDIT_EVERY.load(Ordering::Relaxed) {
        u64::MAX => {
            let n = std::env::var("MSRL_AUDIT_EVERY")
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
                .unwrap_or(0);
            set_audit_every(n);
            n
        }
        n => n,
    }
}

/// Overrides the shadow-audit period (`0` disables; takes precedence
/// over `MSRL_AUDIT_EVERY`).
pub fn set_audit_every(every: u64) {
    AUDIT_EVERY.store(every.min(u64::MAX - 1), Ordering::Relaxed);
}

static AUDIT_REQUEST: AtomicBool = AtomicBool::new(false);

/// Posts a shadow-audit request: the next policy forward that calls
/// [`take_audit_request`] (exactly one — first taker wins) re-runs
/// itself at tier 1 and records the drift via [`record_audit`].
pub fn request_audit() {
    AUDIT_REQUEST.store(true, Ordering::Relaxed);
}

/// Claims a pending shadow-audit request, if any.
pub fn take_audit_request() -> bool {
    AUDIT_REQUEST.swap(false, Ordering::Relaxed)
}

/// Records one shadow-audit observation: the maximum relative error
/// between a tier-2 (or packed) fragment forward and its tier-1
/// reference. Feeds the `health.audit_rel_err` gauge, the
/// `health.audits` counter, and the `health.audit_rel_err` histogram
/// (recorded in pico-units: `rel_err × 1e12`, so the log₂ buckets
/// resolve drifts down to 1e-12).
pub fn record_audit(rel_err: f64) {
    crate::gauge_set("health.audit_rel_err", rel_err);
    crate::static_counter!("health.audits").add(1);
    let picos =
        if rel_err.is_finite() { (rel_err * 1e12).clamp(0.0, 1e18) as u64 } else { u64::MAX };
    crate::static_histogram!("health.audit_rel_err").record(picos);
}

/// Maximum element-wise relative error between two equally-long slices
/// (`|a-b| / max(|b|, 1e-6)`); `+inf` on a length mismatch or a
/// non-finite difference.
pub fn max_rel_err(a: &[f32], b: &[f32]) -> f64 {
    if a.len() != b.len() {
        return f64::INFINITY;
    }
    let mut worst = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        let d = (f64::from(x) - f64::from(y)).abs() / f64::from(y).abs().max(1e-6);
        if !d.is_finite() {
            return f64::INFINITY;
        }
        worst = worst.max(d);
    }
    worst
}

fn last_verdict() -> &'static Mutex<Option<HealthVerdict>> {
    static LAST: std::sync::OnceLock<Mutex<Option<HealthVerdict>>> = std::sync::OnceLock::new();
    LAST.get_or_init(|| Mutex::new(None))
}

/// Stores the run's latest verdict so flight-recorder dumps can embed it
/// (drivers call this when a detector fires).
pub fn set_last_verdict(v: &HealthVerdict) {
    *last_verdict().lock().expect("health verdict store poisoned") = Some(v.clone());
}

/// The latest stored verdict, rendered as JSON — the `health` section of
/// a flight-recorder dump. `None` when no verdict has been stored.
pub fn last_verdict_json() -> Option<String> {
    last_verdict().lock().expect("health verdict store poisoned").as_ref().map(|v| v.to_json())
}

// ---------------------------------------------------------------------------
// Samples, findings, verdicts
// ---------------------------------------------------------------------------

/// Finding severity, ordered `Ok < Warn < Critical`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Nothing wrong.
    #[default]
    Ok,
    /// Degraded but plausibly recoverable (regressions, collapses).
    Warn,
    /// Training is numerically broken or an invariant was violated.
    Critical,
}

impl Severity {
    /// Lower-case label used in JSON and reports.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Ok => "ok",
            Severity::Warn => "warn",
            Severity::Critical => "critical",
        }
    }

    /// Parses [`Severity::name`] output.
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "ok" => Some(Severity::Ok),
            "warn" => Some(Severity::Warn),
            "critical" => Some(Severity::Critical),
            _ => None,
        }
    }
}

/// One iteration's worth of health signal, as fed to
/// [`HealthMonitor::observe`]. Optional fields are simply skipped by the
/// detectors that need them.
#[derive(Debug, Clone, Default)]
pub struct HealthSample {
    /// Zero-based iteration index.
    pub iteration: u64,
    /// Mean episode return this iteration.
    pub reward: f64,
    /// Central training loss, when the driver computes one.
    pub loss: Option<f64>,
    /// Mean policy entropy, when available.
    pub entropy: Option<f64>,
    /// Iterations per second over the last iteration.
    pub iters_per_sec: f64,
    /// Configured staleness bound the iteration ran under.
    pub staleness_bound: u64,
    /// Observed weight staleness, when the driver measures it.
    pub staleness_observed: Option<u64>,
    /// Pre-clip global gradient L2 norm from the learner.
    pub grad_norm: Option<f64>,
    /// Post-update weight L2 norm from the learner.
    pub weight_norm: Option<f64>,
    /// `‖Δweights‖ / ‖weights‖` of the iteration's update.
    pub update_ratio: Option<f64>,
    /// Non-finite entries counted in the flat parameter vector.
    pub nonfinite_params: Option<u64>,
    /// Latest tier-2 shadow-audit max relative error.
    pub audit_rel_err: Option<f64>,
}

/// One detector firing.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthFinding {
    /// Detector name (`"nonfinite"`, `"entropy_collapse"`, ...).
    pub detector: &'static str,
    /// Severity of the firing.
    pub severity: Severity,
    /// Iteration the firing was confirmed at.
    pub iteration: u64,
    /// Human-readable one-line diagnosis.
    pub detail: String,
}

impl HealthFinding {
    fn to_json(&self) -> String {
        format!(
            "{{\"detector\": \"{}\", \"severity\": \"{}\", \"iteration\": {}, \"detail\": \"{}\"}}",
            self.detector,
            self.severity.name(),
            self.iteration,
            esc(&self.detail)
        )
    }
}

fn esc(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x}"),
        _ => "null".to_string(),
    }
}

/// The per-iteration health block carried on schema-v3
/// [`RunEvent`](crate::RunEvent) lines: the current status, the sentinel
/// gauges, explicit non-finite flags (the JSON renderer writes NaN/Inf
/// as `null`, so the booleans carry what the numbers cannot), and any
/// findings that fired *this* iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthStatus {
    /// Worst severity currently active (fired detectors stay active
    /// until they re-arm).
    pub status: Severity,
    /// Whether any watched quantity was non-finite this iteration.
    pub nonfinite: bool,
    /// Pre-clip gradient L2 norm, when the learner published one.
    pub grad_norm: Option<f64>,
    /// Post-update weight L2 norm.
    pub weight_norm: Option<f64>,
    /// `‖Δweights‖ / ‖weights‖` of the update.
    pub update_ratio: Option<f64>,
    /// Non-finite parameter entries counted this iteration.
    pub nonfinite_params: Option<u64>,
    /// Latest shadow-audit max relative error.
    pub audit_rel_err: Option<f64>,
    /// Findings that fired this iteration (exactly-once semantics).
    pub findings: Vec<HealthFinding>,
}

impl HealthStatus {
    /// Renders the block as a JSON object (the `health` field of a v3
    /// metrics line).
    pub fn to_json(&self) -> String {
        let findings: Vec<String> = self.findings.iter().map(HealthFinding::to_json).collect();
        format!(
            concat!(
                "{{\"status\": \"{}\", \"nonfinite\": {}, \"grad_norm\": {}, ",
                "\"weight_norm\": {}, \"update_ratio\": {}, \"nonfinite_params\": {}, ",
                "\"audit_rel_err\": {}, \"findings\": [{}]}}"
            ),
            self.status.name(),
            self.nonfinite,
            fmt_opt(self.grad_norm),
            fmt_opt(self.weight_norm),
            fmt_opt(self.update_ratio),
            self.nonfinite_params.map_or("null".to_string(), |c| c.to_string()),
            fmt_opt(self.audit_rel_err),
            findings.join(", "),
        )
    }
}

/// Run-level accumulation of every firing: the object embedded in
/// flight-recorder dumps and printed by the `doctor` bin.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthVerdict {
    /// Worst severity over the whole run.
    pub status: Severity,
    /// Samples the monitor consumed.
    pub iterations: u64,
    /// Every firing, in order.
    pub findings: Vec<HealthFinding>,
}

impl HealthVerdict {
    /// Renders the verdict as JSON (`msrl.health_verdict.v1`).
    pub fn to_json(&self) -> String {
        let findings: Vec<String> = self.findings.iter().map(HealthFinding::to_json).collect();
        format!(
            concat!(
                "{{\"schema\": \"msrl.health_verdict.v1\", \"status\": \"{}\", ",
                "\"iterations\": {}, \"findings\": [{}]}}"
            ),
            self.status.name(),
            self.iterations,
            findings.join(", "),
        )
    }

    /// Renders a ranked human-readable report: critical findings first,
    /// then warnings, each with its iteration and diagnosis.
    pub fn render(&self) -> String {
        let mut out = format!(
            "verdict: {} ({} findings over {} iterations)\n",
            self.status.name().to_uppercase(),
            self.findings.len(),
            self.iterations
        );
        let mut ranked: Vec<&HealthFinding> = self.findings.iter().collect();
        ranked.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.iteration.cmp(&b.iteration)));
        for f in ranked {
            out.push_str(&format!(
                "  [{:<8}] iter {:>5}  {:<18} {}\n",
                f.severity.name(),
                f.iteration,
                f.detector,
                f.detail
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Detector machinery
// ---------------------------------------------------------------------------

/// Detector window parameters. The defaults are deliberately loose —
/// the watchdog must stay silent on every healthy CI stream; warn-level
/// sensitivity is tuned by the noise floor of small CartPole runs.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// EWMA smoothing factor.
    pub alpha: f64,
    /// Consecutive breaching samples required to fire.
    pub confirm: u32,
    /// Consecutive healthy samples required to re-arm after a firing.
    pub rearm: u32,
    /// Samples before the EWMA detectors start judging (baselines are
    /// snapshotted at the end of warmup).
    pub warmup: u64,
    /// Entropy collapse: EWMA below this fraction of the baseline.
    pub entropy_frac: f64,
    /// Grad explosion: a finite norm above this multiple of its EWMA.
    pub grad_margin: f64,
    /// Reward regression: EWMA below `best − frac·max(|best|, 1)`.
    pub reward_frac: f64,
    /// Throughput regression: EWMA below this fraction of its peak.
    pub tput_frac: f64,
    /// Shadow-audit tolerance (relative error), from `MSRL_AUDIT_BOUND`.
    pub audit_bound: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            alpha: 0.2,
            confirm: 3,
            rearm: 8,
            warmup: 5,
            entropy_frac: 0.2,
            grad_margin: 12.0,
            reward_frac: 0.6,
            tput_frac: 0.25,
            audit_bound: std::env::var("MSRL_AUDIT_BOUND")
                .ok()
                .and_then(|v| v.trim().parse::<f64>().ok())
                .unwrap_or(5e-2),
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Ewma {
    value: Option<f64>,
}

impl Ewma {
    fn update(&mut self, alpha: f64, x: f64) -> f64 {
        let v = match self.value {
            Some(v) => v + alpha * (x - v),
            None => x,
        };
        self.value = Some(v);
        v
    }
}

/// The hysteresis half of a detector: `confirm` consecutive breaches to
/// fire, exactly-once reporting, `rearm` consecutive healthy samples to
/// re-arm.
#[derive(Debug, Clone)]
struct Hysteresis {
    confirm: u32,
    rearm: u32,
    streak: u32,
    healthy: u32,
    armed: bool,
}

impl Hysteresis {
    fn new(confirm: u32, rearm: u32) -> Self {
        Hysteresis {
            confirm: confirm.max(1),
            rearm: rearm.max(1),
            streak: 0,
            healthy: 0,
            armed: true,
        }
    }

    /// Feeds one breach/healthy observation; returns `true` on the one
    /// sample where the detector fires.
    fn observe(&mut self, breach: bool) -> bool {
        if breach {
            self.healthy = 0;
            self.streak = self.streak.saturating_add(1);
            if self.armed && self.streak >= self.confirm {
                self.armed = false;
                return true;
            }
        } else {
            self.streak = 0;
            if !self.armed {
                self.healthy += 1;
                if self.healthy >= self.rearm {
                    self.armed = true;
                    self.healthy = 0;
                }
            }
        }
        false
    }

    /// Whether the detector has fired and not yet re-armed.
    fn active(&self) -> bool {
        !self.armed
    }
}

struct Detector {
    name: &'static str,
    severity: Severity,
    hyst: Hysteresis,
}

impl Detector {
    fn new(name: &'static str, severity: Severity, confirm: u32, rearm: u32) -> Self {
        Detector { name, severity, hyst: Hysteresis::new(confirm, rearm) }
    }

    fn observe(
        &mut self,
        breach: bool,
        iteration: u64,
        detail: impl FnOnce() -> String,
        findings: &mut Vec<HealthFinding>,
    ) {
        if self.hyst.observe(breach) {
            findings.push(HealthFinding {
                detector: self.name,
                severity: self.severity,
                iteration,
                detail: detail(),
            });
        }
    }
}

/// The streaming detector bank. Feed one [`HealthSample`] per iteration
/// via [`HealthMonitor::observe`]; read the run-level verdict back via
/// [`HealthMonitor::verdict`].
pub struct HealthMonitor {
    cfg: HealthConfig,
    n: u64,
    reward: Ewma,
    best_reward: f64,
    entropy: Ewma,
    entropy_baseline: Option<f64>,
    tput: Ewma,
    tput_peak: f64,
    grad: Ewma,
    nonfinite: Detector,
    entropy_collapse: Detector,
    grad_explosion: Detector,
    reward_regression: Detector,
    tput_regression: Detector,
    staleness_breach: Detector,
    audit_drift: Detector,
    findings: Vec<HealthFinding>,
}

impl HealthMonitor {
    /// A monitor with the given window parameters.
    pub fn new(cfg: HealthConfig) -> Self {
        let (c, r) = (cfg.confirm, cfg.rearm);
        HealthMonitor {
            n: 0,
            reward: Ewma::default(),
            best_reward: f64::NEG_INFINITY,
            entropy: Ewma::default(),
            entropy_baseline: None,
            tput: Ewma::default(),
            tput_peak: 0.0,
            grad: Ewma::default(),
            // Numeric-poison and invariant detectors confirm on the
            // first breaching sample: one NaN is already fatal.
            nonfinite: Detector::new("nonfinite", Severity::Critical, 1, r),
            entropy_collapse: Detector::new("entropy_collapse", Severity::Warn, c, r),
            grad_explosion: Detector::new("grad_explosion", Severity::Warn, c, r),
            reward_regression: Detector::new("reward_regression", Severity::Warn, c, r),
            tput_regression: Detector::new("tput_regression", Severity::Warn, c, r),
            staleness_breach: Detector::new("staleness_breach", Severity::Critical, 1, r),
            audit_drift: Detector::new("audit_drift", Severity::Critical, 1, r),
            findings: Vec::new(),
            cfg,
        }
    }

    /// Feeds one iteration; returns the per-iteration status block
    /// (including any findings that fired exactly this iteration).
    pub fn observe(&mut self, s: &HealthSample) -> HealthStatus {
        self.n += 1;
        let a = self.cfg.alpha;
        let it = s.iteration;
        let mut new = Vec::new();

        let bad_loss = s.loss.is_some_and(|l| !l.is_finite());
        let bad_grad = s.grad_norm.is_some_and(|g| !g.is_finite());
        let bad_params = s.nonfinite_params.is_some_and(|c| c > 0);
        let nonfinite = !s.reward.is_finite()
            || bad_loss
            || s.entropy.is_some_and(|e| !e.is_finite())
            || bad_grad
            || s.update_ratio.is_some_and(|u| !u.is_finite())
            || bad_params;
        self.nonfinite.observe(
            nonfinite,
            it,
            || {
                format!(
                    "non-finite training signal (loss bad: {}, grad bad: {}, params bad: {})",
                    bad_loss,
                    bad_grad,
                    s.nonfinite_params.unwrap_or(0)
                )
            },
            &mut new,
        );

        let warm = self.n > self.cfg.warmup;

        // Entropy: baseline snapshotted at the end of warmup; collapse =
        // EWMA below a fraction of that baseline.
        if let Some(e) = s.entropy.filter(|e| e.is_finite()) {
            let ewma = self.entropy.update(a, e);
            if self.n == self.cfg.warmup {
                self.entropy_baseline = Some(ewma);
            }
            let breach = warm
                && self
                    .entropy_baseline
                    .is_some_and(|b| b > 1e-9 && ewma < self.cfg.entropy_frac * b);
            let baseline = self.entropy_baseline.unwrap_or(0.0);
            self.entropy_collapse.observe(
                breach,
                it,
                || {
                    format!(
                        "entropy EWMA {ewma:.4} below {:.0}% of baseline {baseline:.4}",
                        self.cfg.entropy_frac * 100.0
                    )
                },
                &mut new,
            );
        }

        // Gradient norm: compare against the healthy-sample EWMA, and
        // keep breaching samples *out* of it — a sustained explosion
        // must not normalise itself into a new baseline, or the streak
        // would break after one sample and `confirm` never be reached.
        if let Some(g) = s.grad_norm.filter(|g| g.is_finite()) {
            let prev = self.grad.value;
            let breach = warm && prev.is_some_and(|p| g > self.cfg.grad_margin * p.max(1e-9));
            let p = prev.unwrap_or(0.0);
            self.grad_explosion.observe(
                breach,
                it,
                || format!("grad norm {g:.3e} over {}x its EWMA {p:.3e}", self.cfg.grad_margin),
                &mut new,
            );
            if !breach {
                self.grad.update(a, g);
            }
        }

        // Reward: regression against the best EWMA level reached.
        if s.reward.is_finite() {
            let ewma = self.reward.update(a, s.reward);
            if warm {
                self.best_reward = self.best_reward.max(ewma);
                let slack = self.cfg.reward_frac * self.best_reward.abs().max(1.0);
                let best = self.best_reward;
                self.reward_regression.observe(
                    ewma < self.best_reward - slack,
                    it,
                    || {
                        format!(
                            "reward EWMA {ewma:.3} fell below best {best:.3} − slack {slack:.3}"
                        )
                    },
                    &mut new,
                );
            }
        }

        // Throughput: collapse against the peak EWMA.
        if s.iters_per_sec.is_finite() && s.iters_per_sec > 0.0 {
            let ewma = self.tput.update(a, s.iters_per_sec);
            if warm {
                self.tput_peak = self.tput_peak.max(ewma);
                let peak = self.tput_peak;
                self.tput_regression.observe(
                    ewma < self.cfg.tput_frac * self.tput_peak,
                    it,
                    || {
                        format!(
                            "it/s EWMA {ewma:.3} below {:.0}% of peak {peak:.3}",
                            self.cfg.tput_frac * 100.0
                        )
                    },
                    &mut new,
                );
            }
        }

        let observed = s.staleness_observed.unwrap_or(0);
        self.staleness_breach.observe(
            s.staleness_observed.is_some_and(|o| o > s.staleness_bound),
            it,
            || format!("observed staleness {observed} over bound {}", s.staleness_bound),
            &mut new,
        );

        let drift = s.audit_rel_err.unwrap_or(0.0);
        self.audit_drift.observe(
            s.audit_rel_err.is_some_and(|e| !e.is_finite() || e > self.cfg.audit_bound),
            it,
            || {
                format!(
                    "shadow-audit rel error {drift:.3e} over bound {:.3e}",
                    self.cfg.audit_bound
                )
            },
            &mut new,
        );

        self.findings.extend(new.iter().cloned());

        let mut status = Severity::Ok;
        for d in [
            &self.nonfinite,
            &self.entropy_collapse,
            &self.grad_explosion,
            &self.reward_regression,
            &self.tput_regression,
            &self.staleness_breach,
            &self.audit_drift,
        ] {
            if d.hyst.active() {
                status = status.max(d.severity);
            }
        }

        HealthStatus {
            status,
            nonfinite,
            grad_norm: s.grad_norm,
            weight_norm: s.weight_norm,
            update_ratio: s.update_ratio,
            nonfinite_params: s.nonfinite_params,
            audit_rel_err: s.audit_rel_err,
            findings: new,
        }
    }

    /// Appends an externally-produced finding (the replay path ingests
    /// recorded v3 findings through this).
    pub fn ingest(&mut self, f: HealthFinding) {
        if !self.findings.iter().any(|g| g.detector == f.detector && g.iteration == f.iteration) {
            self.findings.push(f);
        }
    }

    /// The run-level verdict so far.
    pub fn verdict(&self) -> HealthVerdict {
        HealthVerdict {
            status: self.findings.iter().map(|f| f.severity).max().unwrap_or(Severity::Ok),
            iterations: self.n,
            findings: self.findings.clone(),
        }
    }
}

impl Default for HealthMonitor {
    fn default() -> Self {
        HealthMonitor::new(HealthConfig::default())
    }
}

// ---------------------------------------------------------------------------
// Stream replay (the `doctor` engine)
// ---------------------------------------------------------------------------

/// Replays a completed RunEvent JSONL stream through fresh detector
/// banks (one per policy — CI streams interleave policies) and merges in
/// every finding recorded on v3 `health` blocks. The result is the
/// post-hoc verdict the `doctor` bin reports.
///
/// # Errors
///
/// A description of the first unparsable line.
pub fn replay_stream(content: &str) -> Result<HealthVerdict, String> {
    use serde_json::Value;
    let num = |v: &Value| -> Option<f64> {
        match v {
            Value::I64(n) => Some(*n as f64),
            Value::U64(n) => Some(*n as f64),
            Value::F64(n) => Some(*n),
            _ => None,
        }
    };
    let mut monitors: std::collections::BTreeMap<String, HealthMonitor> =
        std::collections::BTreeMap::new();
    for (lineno, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = serde_json::value_from_str(line)
            .map_err(|e| format!("line {}: not JSON: {e}", lineno + 1))?;
        let Ok(Value::Str(policy)) = v.field("policy") else {
            return Err(format!("line {}: missing policy", lineno + 1));
        };
        let m = monitors.entry(policy.clone()).or_default();
        let opt = |key: &str| v.field(key).ok().and_then(&num);
        let mut sample = HealthSample {
            iteration: opt("iteration").unwrap_or(0.0) as u64,
            reward: opt("reward").unwrap_or(0.0),
            loss: opt("loss"),
            entropy: opt("entropy"),
            iters_per_sec: opt("iters_per_sec").unwrap_or(0.0),
            staleness_bound: opt("staleness").unwrap_or(0.0) as u64,
            ..HealthSample::default()
        };
        let mut recorded = Vec::new();
        if let Ok(health) = v.field("health") {
            let hopt = |key: &str| health.field(key).ok().and_then(&num);
            sample.grad_norm = hopt("grad_norm");
            sample.weight_norm = hopt("weight_norm");
            sample.update_ratio = hopt("update_ratio");
            sample.nonfinite_params = hopt("nonfinite_params").map(|c| c as u64);
            sample.audit_rel_err = hopt("audit_rel_err");
            // The stream renders NaN/Inf as null; the recorded flag is
            // the only trace of the poison, so it re-poisons the sample.
            if matches!(health.field("nonfinite"), Ok(Value::Bool(true)))
                && sample.nonfinite_params.unwrap_or(0) == 0
            {
                sample.nonfinite_params = Some(1);
            }
            if let Ok(Value::Seq(fs)) = health.field("findings") {
                for f in fs {
                    let detector = match f.field("detector") {
                        Ok(Value::Str(d)) => leak_detector_name(d),
                        _ => "recorded",
                    };
                    let severity = match f.field("severity") {
                        Ok(Value::Str(s)) => Severity::parse(s).unwrap_or(Severity::Warn),
                        _ => Severity::Warn,
                    };
                    let detail = match f.field("detail") {
                        Ok(Value::Str(d)) => format!("{d} (recorded)"),
                        _ => "(recorded)".to_string(),
                    };
                    let iteration = f.field("iteration").ok().and_then(&num).unwrap_or(0.0) as u64;
                    recorded.push(HealthFinding { detector, severity, iteration, detail });
                }
            }
        }
        m.observe(&sample);
        for f in recorded {
            m.ingest(f);
        }
    }
    let mut verdict = HealthVerdict::default();
    for m in monitors.values() {
        let v = m.verdict();
        verdict.status = verdict.status.max(v.status);
        verdict.iterations += v.iterations;
        verdict.findings.extend(v.findings);
    }
    Ok(verdict)
}

/// Maps a recorded detector name back to its `&'static str` (detector
/// names form a closed set; unknown names collapse to `"recorded"`).
fn leak_detector_name(name: &str) -> &'static str {
    for known in [
        "nonfinite",
        "entropy_collapse",
        "grad_explosion",
        "reward_regression",
        "tput_regression",
        "staleness_breach",
        "audit_drift",
    ] {
        if name == known {
            return known;
        }
    }
    "recorded"
}

#[cfg(test)]
mod tests {
    use super::*;

    fn healthy(iteration: u64) -> HealthSample {
        HealthSample {
            iteration,
            reward: 20.0 + iteration as f64,
            loss: Some(0.5),
            entropy: Some(0.6),
            iters_per_sec: 100.0,
            staleness_bound: 1,
            grad_norm: Some(1.0),
            weight_norm: Some(10.0),
            update_ratio: Some(1e-3),
            nonfinite_params: Some(0),
            ..HealthSample::default()
        }
    }

    #[test]
    fn healthy_stream_stays_silent() {
        let mut m = HealthMonitor::default();
        for i in 0..50 {
            let s = m.observe(&healthy(i));
            assert_eq!(s.status, Severity::Ok, "iteration {i}: {:?}", s.findings);
            assert!(s.findings.is_empty());
        }
        assert_eq!(m.verdict().status, Severity::Ok);
        assert!(m.verdict().findings.is_empty());
    }

    #[test]
    fn nan_loss_fires_exactly_once_and_rearms() {
        let mut m = HealthMonitor::default();
        for i in 0..6 {
            m.observe(&healthy(i));
        }
        // A NaN loss fires on its *first* sample (confirm = 1)...
        let mut bad = healthy(6);
        bad.loss = Some(f64::NAN);
        let s = m.observe(&bad);
        assert_eq!(s.status, Severity::Critical);
        assert_eq!(s.findings.len(), 1);
        assert_eq!(s.findings[0].detector, "nonfinite");
        // ...then holds silent while the breach persists.
        for i in 7..12 {
            let mut bad = healthy(i);
            bad.loss = Some(f64::NAN);
            let s = m.observe(&bad);
            assert!(s.findings.is_empty(), "exactly-once firing");
            assert_eq!(s.status, Severity::Critical, "stays active while un-armed");
        }
        // Healthy samples re-arm it; a fresh poison fires again.
        for i in 12..12 + 8 {
            m.observe(&healthy(i));
        }
        let mut bad = healthy(40);
        bad.nonfinite_params = Some(3);
        let s = m.observe(&bad);
        assert_eq!(s.findings.len(), 1, "re-armed detector fires a second time");
        assert_eq!(m.verdict().findings.len(), 2);
        assert_eq!(m.verdict().status, Severity::Critical);
    }

    #[test]
    fn sub_hysteresis_noise_never_fires() {
        let mut m = HealthMonitor::default();
        for i in 0..10 {
            m.observe(&healthy(i));
        }
        // Entropy dips hard for confirm−1 samples, then recovers —
        // repeatedly. The streak never reaches `confirm`, so nothing
        // fires.
        for round in 0..5 {
            for k in 0..2 {
                let mut s = healthy(10 + round * 3 + k);
                s.entropy = Some(0.01);
                let st = m.observe(&s);
                assert!(st.findings.is_empty(), "round {round}: sub-hysteresis dip fired");
            }
            m.observe(&healthy(12 + round * 3));
        }
        assert_eq!(m.verdict().status, Severity::Ok);
    }

    #[test]
    fn entropy_collapse_fires_after_confirm_window() {
        let mut m = HealthMonitor::default();
        for i in 0..8 {
            m.observe(&healthy(i));
        }
        let mut fired = Vec::new();
        for i in 8..20 {
            let mut s = healthy(i);
            s.entropy = Some(0.001);
            fired.extend(m.observe(&s).findings);
        }
        assert_eq!(fired.len(), 1, "one collapse firing: {fired:?}");
        assert_eq!(fired[0].detector, "entropy_collapse");
        assert_eq!(fired[0].severity, Severity::Warn);
        // EWMA needs a few samples to sink below the threshold (8 at
        // α=0.2 from 0.6 to <0.12, i.e. iteration 15), then the firing
        // lands at the end of the confirm window: iteration 17.
        assert!(fired[0].iteration >= 10 && fired[0].iteration <= 18, "{}", fired[0].iteration);
    }

    #[test]
    fn grad_explosion_and_audit_drift() {
        let mut m = HealthMonitor::default();
        for i in 0..8 {
            m.observe(&healthy(i));
        }
        let mut fired = Vec::new();
        for i in 8..8 + 4 {
            let mut s = healthy(i);
            s.grad_norm = Some(1.0e4);
            fired.extend(m.observe(&s).findings);
        }
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].detector, "grad_explosion");
        assert_eq!(fired[0].severity, Severity::Warn, "finite spike is a warning, not critical");
        let mut s = healthy(20);
        s.audit_rel_err = Some(1.0);
        let st = m.observe(&s);
        assert_eq!(st.findings.len(), 1);
        assert_eq!(st.findings[0].detector, "audit_drift");
        assert_eq!(st.findings[0].severity, Severity::Critical);
    }

    #[test]
    fn status_json_and_verdict_roundtrip_through_replay() {
        let mut m = HealthMonitor::default();
        let mut lines = String::new();
        for i in 0..10 {
            let mut s = healthy(i);
            if i == 7 {
                s.loss = Some(f64::INFINITY);
                s.nonfinite_params = Some(2);
            }
            let st = m.observe(&s);
            lines.push_str(&format!(
                concat!(
                    "{{\"schema\": \"msrl.run_event.v3\", \"policy\": \"dp_a\", ",
                    "\"iteration\": {}, \"reward\": {}, \"loss\": {}, \"entropy\": 0.6, ",
                    "\"iters_per_sec\": 100, \"comm_bytes\": 0, \"staleness\": 1, ",
                    "\"plan_cache_hit_rate\": null, \"health\": {}}}\n"
                ),
                i,
                s.reward,
                if i == 7 { "null".to_string() } else { "0.5".to_string() },
                st.to_json(),
            ));
        }
        assert_eq!(m.verdict().status, Severity::Critical);
        let replayed = replay_stream(&lines).expect("replay parses");
        assert_eq!(replayed.status, Severity::Critical, "{}", replayed.render());
        assert!(
            replayed.findings.iter().any(|f| f.detector == "nonfinite" && f.iteration == 7),
            "replay recovers the recorded firing: {}",
            replayed.render()
        );
        // The ranked report leads with the critical finding.
        let report = replayed.render();
        assert!(report.starts_with("verdict: CRITICAL"));
    }

    #[test]
    fn replay_is_quiet_on_healthy_v1_lines() {
        let mut lines = String::new();
        for i in 0..20 {
            lines.push_str(&format!(
                concat!(
                    "{{\"schema\": \"msrl.run_event.v1\", \"policy\": \"dp_c\", ",
                    "\"iteration\": {}, \"reward\": {}, \"loss\": 0.4, \"entropy\": 0.7, ",
                    "\"iters_per_sec\": 50, \"comm_bytes\": 10, \"staleness\": 0, ",
                    "\"plan_cache_hit_rate\": 0.9}}\n"
                ),
                i,
                10.0 + i as f64
            ));
        }
        let verdict = replay_stream(&lines).expect("replay parses");
        assert_eq!(verdict.status, Severity::Ok, "{}", verdict.render());
    }

    #[test]
    fn rel_err_and_audit_gates() {
        assert_eq!(max_rel_err(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!(max_rel_err(&[1.1], &[1.0]) > 0.09);
        assert_eq!(max_rel_err(&[1.0], &[1.0, 2.0]), f64::INFINITY);
        assert_eq!(max_rel_err(&[f32::NAN], &[1.0]), f64::INFINITY);
        set_audit_every(3);
        assert_eq!(audit_every(), 3);
        set_audit_every(0);
        assert!(!take_audit_request());
        request_audit();
        assert!(take_audit_request(), "first taker wins");
        assert!(!take_audit_request(), "request is consumed");
    }
}
