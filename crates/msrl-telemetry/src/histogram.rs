//! Always-on lock-free latency histograms.
//!
//! A [`Histogram`] is a fixed array of 64 log₂-scale buckets of relaxed
//! atomics living in the process-wide registry next to counters and
//! gauges. Recording a value is one `leading_zeros` plus one relaxed
//! `fetch_add` — cheap enough to stay on in ordinary (untraced) runs, so
//! [`TelemetryReport`](crate::TelemetryReport) carries real p50/p90/p99
//! latency quantiles even when `MSRL_TRACE` is unset.
//!
//! Bucketing: bucket 0 holds the value 0; bucket `i` (1 ≤ i < 63) holds
//! values in `[2^(i-1), 2^i)`; bucket 63 holds everything at or above
//! `2^62`. Quantiles are estimated by nearest-rank walk over the
//! cumulative bucket counts, reporting the bucket midpoint — the
//! estimate is always within one bucket of the exact percentile
//! (property-tested in `tests/histogram_props.rs`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Number of log₂ buckets per histogram.
pub const HISTOGRAM_BUCKETS: usize = 64;

struct HistCells {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    /// Exact running sum of recorded values (Prometheus `_sum`).
    sum: AtomicU64,
}

impl HistCells {
    fn new() -> HistCells {
        HistCells { buckets: std::array::from_fn(|_| AtomicU64::new(0)), sum: AtomicU64::new(0) }
    }
}

type HistMap = Mutex<BTreeMap<String, Arc<HistCells>>>;

fn histograms() -> &'static HistMap {
    static CELLS: OnceLock<HistMap> = OnceLock::new();
    CELLS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn intern(name: &str) -> Arc<HistCells> {
    let mut m = histograms().lock().expect("telemetry histogram registry poisoned");
    if let Some(cells) = m.get(name) {
        return Arc::clone(cells);
    }
    let cells = Arc::new(HistCells::new());
    m.insert(name.to_string(), Arc::clone(&cells));
    cells
}

/// The bucket a value lands in: 0 for 0, otherwise
/// `64 - leading_zeros(v)` clamped to the last bucket.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive lower bound of a bucket (0 for bucket 0, else `2^(i-1)`).
#[inline]
pub fn bucket_lower_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << (index - 1)
    }
}

/// The value a bucket reports for quantile estimates: 0 for bucket 0,
/// otherwise the arithmetic midpoint of `[2^(i-1), 2^i)`.
#[inline]
pub fn bucket_estimate(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        let lo = bucket_lower_bound(index);
        lo + lo / 2
    }
}

/// A handle on a named always-on histogram. Hot call sites cache one
/// (or use [`static_histogram!`](crate::static_histogram)) to skip the
/// registry lookup per record.
#[derive(Clone)]
pub struct Histogram {
    cells: Arc<HistCells>,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram").field("count", &self.snapshot().count).finish()
    }
}

impl Histogram {
    /// A handle on the named histogram, creating it on first use.
    pub fn handle(name: &str) -> Histogram {
        Histogram { cells: intern(name) }
    }

    /// Records one observation: one bucket computation plus two relaxed
    /// `fetch_add`s (bucket count and exact sum). Never gated —
    /// histograms are always live.
    #[inline]
    pub fn record(&self, value: u64) {
        self.cells.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.cells.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos() as u64);
    }

    /// Starts timing a section; the returned guard records the elapsed
    /// nanoseconds into this histogram when dropped.
    #[inline]
    pub fn time(&self) -> HistTimer<'_> {
        HistTimer { hist: self, start: Instant::now() }
    }

    /// Raw per-bucket counts (index `i` per [`bucket_index`]).
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.cells.buckets[i].load(Ordering::Relaxed))
    }

    /// Exact sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.cells.sum.load(Ordering::Relaxed)
    }

    /// Aggregated count / quantile estimates for this histogram.
    pub fn snapshot(&self) -> HistogramStats {
        HistogramStats::from_buckets(&self.bucket_counts())
    }
}

/// RAII timer: records elapsed nanoseconds into its histogram on drop.
#[must_use = "bind the timer to a local so the section is recorded at scope exit"]
pub struct HistTimer<'a> {
    hist: &'a Histogram,
    start: Instant,
}

impl Drop for HistTimer<'_> {
    fn drop(&mut self) {
        self.hist.record_duration(self.start.elapsed());
    }
}

/// Count plus estimated quantiles of one histogram, all in the recorded
/// unit (nanoseconds at every call site in this workspace).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramStats {
    /// Total recorded observations.
    pub count: u64,
    /// Estimated median.
    pub p50_ns: u64,
    /// Estimated 90th percentile.
    pub p90_ns: u64,
    /// Estimated 99th percentile.
    pub p99_ns: u64,
    /// Midpoint estimate of the highest non-empty bucket.
    pub max_ns: u64,
}

impl HistogramStats {
    /// Derives stats from raw bucket counts (nearest-rank quantile over
    /// the cumulative counts, bucket-midpoint estimates).
    pub fn from_buckets(buckets: &[u64; HISTOGRAM_BUCKETS]) -> HistogramStats {
        let count: u64 = buckets.iter().sum();
        if count == 0 {
            return HistogramStats::default();
        }
        let quantile = |pct: f64| -> u64 {
            let rank = ((pct / 100.0) * count as f64).ceil() as u64;
            let rank = rank.clamp(1, count);
            let mut seen = 0u64;
            for (i, &c) in buckets.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_estimate(i);
                }
            }
            bucket_estimate(HISTOGRAM_BUCKETS - 1)
        };
        let max_bucket = buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
        HistogramStats {
            count,
            p50_ns: quantile(50.0),
            p90_ns: quantile(90.0),
            p99_ns: quantile(99.0),
            max_ns: bucket_estimate(max_bucket),
        }
    }
}

/// Records one observation on the named histogram (registry lookup per
/// call — fine for cold paths; hot sites cache a [`Histogram`]).
pub fn histogram_record(name: &str, value: u64) {
    let cells = intern(name);
    cells.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    cells.sum.fetch_add(value, Ordering::Relaxed);
}

/// The named histogram's stats (`None` if never touched).
pub fn histogram_stats(name: &str) -> Option<HistogramStats> {
    let m = histograms().lock().expect("telemetry histogram registry poisoned");
    m.get(name).map(|cells| {
        let counts: [u64; HISTOGRAM_BUCKETS] =
            std::array::from_fn(|i| cells.buckets[i].load(Ordering::Relaxed));
        HistogramStats::from_buckets(&counts)
    })
}

/// All histograms, name-sorted (the registry is a `BTreeMap`, so this
/// order is deterministic across runs — report/JSON output diffs
/// cleanly).
pub fn histograms_snapshot() -> Vec<(String, HistogramStats)> {
    let m = histograms().lock().expect("telemetry histogram registry poisoned");
    m.iter()
        .map(|(k, cells)| {
            let counts: [u64; HISTOGRAM_BUCKETS] =
                std::array::from_fn(|i| cells.buckets[i].load(Ordering::Relaxed));
            (k.clone(), HistogramStats::from_buckets(&counts))
        })
        .collect()
}

/// All histograms' raw state, name-sorted: per-bucket counts plus the
/// exact value sum — the inputs to the Prometheus `_bucket`/`_sum`
/// series and the flight-recorder dump.
pub fn histograms_raw_snapshot() -> Vec<(String, [u64; HISTOGRAM_BUCKETS], u64)> {
    let m = histograms().lock().expect("telemetry histogram registry poisoned");
    m.iter()
        .map(|(k, cells)| {
            let counts: [u64; HISTOGRAM_BUCKETS] =
                std::array::from_fn(|i| cells.buckets[i].load(Ordering::Relaxed));
            (k.clone(), counts, cells.sum.load(Ordering::Relaxed))
        })
        .collect()
}

/// Zeroes every histogram bucket. Used between profiled runs so
/// quantiles attribute cleanly.
pub fn reset_histograms() {
    let m = histograms().lock().expect("telemetry histogram registry poisoned");
    for cells in m.values() {
        for b in &cells.buckets {
            b.store(0, Ordering::Relaxed);
        }
        cells.sum.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            let lo = bucket_lower_bound(i);
            assert_eq!(bucket_index(lo), i, "lower bound lands in its bucket");
            assert_eq!(bucket_index(2 * lo - 1), i, "upper bound lands in its bucket");
            let est = bucket_estimate(i);
            assert_eq!(bucket_index(est), i, "estimate lies inside its bucket");
        }
    }

    #[test]
    fn snapshot_quantiles_on_known_values() {
        let h = Histogram::handle("hist.test.known");
        // 90 values near 1000 (bucket 10), 10 near 1M (bucket 20).
        for _ in 0..90 {
            h.record(1000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(bucket_index(s.p50_ns), bucket_index(1000));
        assert_eq!(bucket_index(s.p90_ns), bucket_index(1000));
        assert_eq!(bucket_index(s.p99_ns), bucket_index(1_000_000));
        assert_eq!(bucket_index(s.max_ns), bucket_index(1_000_000));
    }

    #[test]
    fn snapshot_is_name_sorted_and_resettable() {
        histogram_record("hist.test.zb", 5);
        histogram_record("hist.test.za", 5);
        let snap = histograms_snapshot();
        let names: Vec<&str> = snap.iter().map(|(k, _)| k.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "histograms_snapshot is name-sorted");
        assert!(histogram_stats("hist.test.za").unwrap().count >= 1);
    }

    #[test]
    fn sum_tracks_recorded_values() {
        let h = Histogram::handle("hist.test.sum");
        h.record(10);
        h.record(22);
        h.record(0);
        assert_eq!(h.sum(), 32);
        let raw = histograms_raw_snapshot();
        let (_, buckets, sum) =
            raw.iter().find(|(n, _, _)| n == "hist.test.sum").expect("snapshot carries histogram");
        assert_eq!(*sum, 32);
        assert_eq!(buckets.iter().sum::<u64>(), 3);
    }

    #[test]
    fn timer_records_one_observation() {
        let h = Histogram::handle("hist.test.timer");
        {
            let _t = h.time();
        }
        assert_eq!(h.snapshot().count, 1);
    }
}
