//! Span event recording: per-thread buffers, a global sink, draining.
//!
//! Each thread records into its own `Vec<Event>` — no locks, no atomics
//! beyond the enable gate — and flushes that buffer into the process-wide
//! sink when it grows past a threshold and when the thread exits (via the
//! thread-local's destructor). [`drain`] therefore sees every event from
//! threads that have finished; callers that record on long-lived threads
//! flush explicitly with [`flush_thread`]. All the execution drivers in
//! this workspace join their workers (scoped threads, joined mailbox
//! threads) before reporting, so the exit-time flush suffices in
//! practice.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Whether an event opens or closes a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span opened.
    Begin,
    /// Span closed.
    End,
}

/// One recorded span boundary.
#[derive(Debug, Clone)]
pub struct Event {
    /// Span name (static: instrumentation sites use literals).
    pub name: &'static str,
    /// Opening or closing boundary.
    pub phase: Phase,
    /// Nanoseconds since the process-wide telemetry epoch.
    pub ts_ns: u64,
    /// Recording thread's telemetry lane id (small, dense, stable for
    /// the thread's lifetime).
    pub tid: u64,
    /// Optional fragment/replica id the span belongs to.
    pub id: Option<u64>,
}

/// The single time origin all threads stamp against.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

pub(crate) fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// The calling thread's telemetry lane id (0 during TLS teardown).
pub(crate) fn current_tid() -> u64 {
    LOCAL.try_with(|l| l.borrow().tid).unwrap_or(0)
}

/// Events flushed from exited (or explicitly flushed) threads.
static SINK: Mutex<Vec<Event>> = Mutex::new(Vec::new());

/// Next thread lane id.
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// Local events past this length flush to the sink (amortises the lock).
const FLUSH_AT: usize = 8 * 1024;

struct LocalBuf {
    tid: u64,
    events: Vec<Event>,
}

impl LocalBuf {
    fn flush(&mut self) {
        if self.events.is_empty() {
            return;
        }
        let mut sink = SINK.lock().expect("telemetry sink poisoned");
        sink.append(&mut self.events);
    }
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<LocalBuf> = RefCell::new(LocalBuf {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        events: Vec::new(),
    });
}

fn record(name: &'static str, phase: Phase, id: Option<u64>) {
    let ts_ns = now_ns();
    LOCAL.with(|l| {
        let mut buf = l.borrow_mut();
        let tid = buf.tid;
        buf.events.push(Event { name, phase, ts_ns, tid, id });
        if buf.events.len() >= FLUSH_AT {
            buf.flush();
        }
    });
}

/// An RAII span: records `Begin` on creation and `End` on drop. A guard
/// created while tracing is disabled is inert.
#[must_use = "bind the span guard to a local so it closes at scope exit"]
pub struct SpanGuard {
    name: Option<&'static str>,
    id: Option<u64>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(name) = self.name {
            record(name, Phase::End, self.id);
        }
    }
}

/// Opens an unlabelled span (see the [`span!`](crate::span!) macro).
/// The flight recorder notes every span open (when on) even while
/// tracing is disabled.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    crate::flightrec::note_span(name);
    if !crate::enabled() {
        return SpanGuard { name: None, id: None };
    }
    record(name, Phase::Begin, None);
    SpanGuard { name: Some(name), id: None }
}

/// Opens a span labelled with a fragment/replica id.
#[inline]
pub fn span_id(name: &'static str, id: u64) -> SpanGuard {
    crate::flightrec::note_span(name);
    if !crate::enabled() {
        return SpanGuard { name: None, id: None };
    }
    record(name, Phase::Begin, Some(id));
    SpanGuard { name: Some(name), id: Some(id) }
}

/// Flushes the calling thread's local buffer into the global sink.
pub fn flush_thread() {
    LOCAL.with(|l| l.borrow_mut().flush());
}

/// Flushes the calling thread, then removes and returns every event in
/// the sink, sorted by timestamp (the sort is stable, so each thread's
/// own ordering is preserved).
pub fn drain() -> Vec<Event> {
    flush_thread();
    let mut events = {
        let mut sink = SINK.lock().expect("telemetry sink poisoned");
        std::mem::take(&mut *sink)
    };
    events.sort_by_key(|e| e.ts_ns);
    events
}

/// Discards all recorded events (calling thread's buffer and the sink).
pub fn clear_events() {
    LOCAL.with(|l| l.borrow_mut().events.clear());
    SINK.lock().expect("telemetry sink poisoned").clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_are_monotonic_per_thread() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn guard_without_name_is_inert() {
        // Dropping a disabled guard must not record.
        let g = SpanGuard { name: None, id: None };
        drop(g);
    }
}
