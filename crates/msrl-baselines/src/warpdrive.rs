//! A WarpDrive-style monolithic trainer.
//!
//! WarpDrive (Lan et al. 2021) hand-writes the entire RL loop as CUDA
//! kernels on one GPU: one kernel per pipeline stage, a host sync each
//! step, and no cross-stage fusion or compiler optimisation. This
//! baseline reproduces that *structure* over the batched environments of
//! `msrl_env::batched`, with kernel-launch and host-sync counters that
//! make the structural overhead measurable — the mechanism behind
//! Fig. 10a, where MSRL's graph-compiled fragments launch far fewer
//! kernels for the same arithmetic.

use msrl_algos::buffer::{step_batch, TrajectoryBuffer};
use msrl_algos::ppo::{PpoConfig, PpoLearner, PpoPolicy};
use msrl_core::api::Learner;
use msrl_core::Result;
use msrl_env::batched::BatchedEnv;
use msrl_telemetry::Counter;

/// Instrumentation counters for the monolithic loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Device kernel launches.
    pub launches: u64,
    /// Host↔device synchronisation points.
    pub host_syncs: u64,
}

/// Kernel launches WarpDrive's unfused loop performs per step: separate
/// kernels for observation packing, each policy layer's matmul/bias/
/// activation, sampling, environment physics, reward computation and the
/// buffer write.
pub const WARPDRIVE_LAUNCHES_PER_STEP: u64 = 40;

/// Launches per step for MSRL's DP-D fragment after graph compilation
/// fuses the stages (§5.2).
pub const MSRL_FUSED_LAUNCHES_PER_STEP: u64 = 12;

/// The result of a WarpDrive-style run.
#[derive(Debug, Clone, Default)]
pub struct WarpDriveReport {
    /// Mean per-agent step reward per episode.
    pub episode_rewards: Vec<f32>,
    /// Device-structure counters.
    pub stats: KernelStats,
}

/// Trains a discrete policy over a batched environment with the
/// WarpDrive loop structure.
///
/// # Errors
///
/// Propagates algorithm failures.
pub fn run_warpdrive<B: BatchedEnv>(
    env: &mut B,
    episodes: usize,
    hidden: &[usize],
    seed: u64,
) -> Result<WarpDriveReport> {
    let policy = PpoPolicy::discrete(env.obs_dim(), env.n_actions(), hidden, seed);
    let mut learner = PpoLearner::new(policy, PpoConfig { epochs: 1, ..PpoConfig::default() });
    let mut rng = msrl_tensor::init::rng(seed + 1);
    let mut report = WarpDriveReport::default();
    // Scoped counters: private to this run (reported in `stats`), also
    // feeding the process-wide `baseline.*` telemetry totals.
    let launches = Counter::scoped("baseline.kernel_launches");
    let host_syncs = Counter::scoped("baseline.host_syncs");
    for _ in 0..episodes {
        let mut buf = TrajectoryBuffer::new();
        let mut obs = env.reset();
        let mut total = 0.0;
        let mut steps = 0usize;
        loop {
            // One "kernel" per stage; a host sync per step.
            launches.add(WARPDRIVE_LAUNCHES_PER_STEP);
            host_syncs.add(1);
            let out = learner.policy.act(&obs, &mut rng)?;
            let actions: Vec<usize> = out.actions.data().iter().map(|&a| a as usize).collect();
            let step = env.step(&actions);
            total += step.rewards.data().iter().sum::<f32>();
            steps += 1;
            let n = env.total_agents();
            buf.insert(step_batch(
                obs.clone(),
                out.actions,
                step.rewards.clone(),
                step.obs.clone(),
                vec![step.done; n],
                out.log_probs,
                out.values.expect("PPO policy has a critic"),
            ));
            obs = step.obs;
            if step.done {
                break;
            }
        }
        let batch = buf.drain_env_major()?;
        learner.learn(&batch)?;
        report.episode_rewards.push(total / (env.total_agents() * steps.max(1)) as f32);
    }
    report.stats = KernelStats { launches: launches.get(), host_syncs: host_syncs.get() };
    Ok(report)
}

/// Kernel launches MSRL's fused DP-D fragment would perform for the same
/// run — the measurable gap of Fig. 10a.
pub fn msrl_equivalent_launches(episodes: usize, steps_per_episode: usize) -> u64 {
    (episodes * steps_per_episode) as u64 * MSRL_FUSED_LAUNCHES_PER_STEP
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrl_env::batched::BatchedTag;

    #[test]
    fn warpdrive_loop_runs_and_counts_structure() {
        let mut env = BatchedTag::new(4, 3, 1, 0);
        let report = run_warpdrive(&mut env, 3, &[16], 1).unwrap();
        assert_eq!(report.episode_rewards.len(), 3);
        // 3 episodes × 25 steps, 40 launches + 1 sync each.
        assert_eq!(report.stats.host_syncs, 75);
        assert_eq!(report.stats.launches, 75 * WARPDRIVE_LAUNCHES_PER_STEP);
        // MSRL's fused loop does the same work in far fewer launches.
        let msrl = msrl_equivalent_launches(3, 25);
        assert!(report.stats.launches > 3 * msrl);
    }

    #[test]
    fn rewards_are_finite() {
        let mut env = BatchedTag::new(2, 1, 1, 5);
        let report = run_warpdrive(&mut env, 2, &[8], 2).unwrap();
        assert!(report.episode_rewards.iter().all(|r| r.is_finite()));
    }
}
