//! The sequential single-device MARL baseline of Fig. 11a.
//!
//! One device trains all `n` MAPPO agents in turn. A memory accountant
//! tracks the joint working set (activations of each agent's critic over
//! the O(n²) observations); exceeding the device budget is an OOM — the
//! paper's baseline runs out of memory at 64 agents while MSRL's DP-E
//! continues.

use msrl_algos::mappo::Mappo;
use msrl_algos::ppo::PpoConfig;
use msrl_core::Result;
use msrl_env::mpe::SimpleSpread;
use msrl_env::MultiAgentEnvironment;

/// Device memory budget for the baseline (16 GB cards, as in Tab. 3).
pub const DEVICE_MEM_BYTES: u64 = 16 << 30;

/// Outcome of a sequential MARL training attempt.
#[derive(Debug, Clone)]
pub enum SequentialOutcome {
    /// Training ran; per-episode mean step rewards attached.
    Completed {
        /// Mean per-agent step reward per episode.
        episode_rewards: Vec<f32>,
        /// Peak working set in bytes.
        peak_memory: u64,
    },
    /// The joint working set exceeded the device budget.
    OutOfMemory {
        /// The working set that was required.
        required: u64,
    },
}

/// Estimated training working set for `n` agents with `obs_dim`-wide
/// observations, `horizon` steps per episode, and `hidden` critic width
/// (activations + gradients for all agents resident at once, f32).
pub fn working_set_bytes(n: usize, obs_dim: usize, horizon: usize, hidden: usize) -> u64 {
    // Per agent: activations over the episode batch for a critic that
    // consumes the joint observation (n agents × obs_dim), twice for the
    // backward pass, plus parameter/optimizer state (small).
    let joint_in = n * obs_dim;
    let per_agent = 2 * horizon * (joint_in + hidden) * 4;
    // The sequential baseline keeps every agent's state resident.
    (n * per_agent) as u64 * 32 // 32 vectorised env instances resident
}

/// Trains all agents sequentially on one device, or reports OOM.
///
/// # Errors
///
/// Propagates algorithm failures.
pub fn run_sequential_mappo(
    n_agents: usize,
    episodes: usize,
    seed: u64,
) -> Result<SequentialOutcome> {
    let mut env = SimpleSpread::new(n_agents, seed).with_global_obs(true);
    let required = working_set_bytes(n_agents, env.obs_dim(), env.horizon(), 64);
    if required > DEVICE_MEM_BYTES {
        return Ok(SequentialOutcome::OutOfMemory { required });
    }
    let mut mappo = Mappo::new(&env, &[32], PpoConfig::default(), seed + 1);
    let mut episode_rewards = Vec::with_capacity(episodes);
    for _ in 0..episodes {
        // Sequential: the single device handles every agent's collection
        // and training inside this call.
        let r = mappo.train_iteration(&mut env, 1)?;
        episode_rewards.push(r);
    }
    Ok(SequentialOutcome::Completed { episode_rewards, peak_memory: required })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_agent_counts_complete() {
        match run_sequential_mappo(2, 3, 0).unwrap() {
            SequentialOutcome::Completed { episode_rewards, peak_memory } => {
                assert_eq!(episode_rewards.len(), 3);
                assert!(peak_memory < DEVICE_MEM_BYTES);
            }
            SequentialOutcome::OutOfMemory { .. } => panic!("2 agents must fit"),
        }
    }

    #[test]
    fn memory_grows_superlinearly_and_ooms_at_64() {
        let m = |n: usize| {
            let env = SimpleSpread::new(n, 0).with_global_obs(true);
            working_set_bytes(n, env.obs_dim(), env.horizon(), 64)
        };
        // O(n²) obs × n agents × n joint-input ⇒ steep growth.
        assert!(m(32) > 40 * m(8), "m(8)={} m(32)={}", m(8), m(32));
        assert!(m(32) <= DEVICE_MEM_BYTES, "32 agents fit: {}", m(32));
        assert!(m(64) > DEVICE_MEM_BYTES, "64 agents OOM: {}", m(64));
        match run_sequential_mappo(64, 1, 0).unwrap() {
            SequentialOutcome::OutOfMemory { required } => {
                assert!(required > DEVICE_MEM_BYTES);
            }
            SequentialOutcome::Completed { .. } => panic!("64 agents must OOM"),
        }
    }
}
