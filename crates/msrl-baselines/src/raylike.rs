//! A Ray-like actor-model execution engine and its PPO/A3C drivers.
//!
//! Ray (Moritz et al., OSDI '18) executes algorithms as stateful
//! *actors* exchanging messages; RLlib layers centralised control on
//! top. This module provides the minimal equivalent: [`ActorHandle`]s
//! whose remote calls return [`Future`]s, backed by one thread and a
//! mailbox per actor — enough to express the rollout/learn driver loop
//! the paper compares against.
//!
//! The PPO driver keeps Ray's structural costs: each rollout actor steps
//! its environments **sequentially** and performs per-environment
//! (unbatched) policy inference on the CPU; async messaging always
//! stages payloads through host memory. Step counters expose those costs
//! to the benchmarks through [`msrl_telemetry`] scoped counters: each
//! actor keeps its private count (asserted in tests) while the same
//! increments feed the process-wide `baseline.env_steps` /
//! `baseline.infer_calls` totals that profiling reports read.

use std::thread::JoinHandle;

use msrl_telemetry::Counter;

use crossbeam_channel::{unbounded, Receiver, Sender};
use msrl_algos::buffer::step_batch;
use msrl_algos::ppo::{PpoConfig, PpoLearner, PpoPolicy};
use msrl_core::api::{Learner, SampleBatch};
use msrl_core::{FdgError, Result};
use msrl_env::{Action, Environment};
use msrl_tensor::Tensor;

/// A message processed by a Ray-like actor.
type Task<S> = Box<dyn FnOnce(&mut S) -> Vec<f32> + Send>;

/// A pending remote result.
pub struct Future {
    rx: Receiver<Vec<f32>>,
}

impl Future {
    /// Blocks until the remote call completes (`ray.get`).
    pub fn get(self) -> Vec<f32> {
        self.rx.recv().unwrap_or_default()
    }
}

/// A handle to a stateful remote actor (`ray.remote`).
pub struct ActorHandle<S: Send + 'static> {
    tx: Sender<Invocation<S>>,
    thread: Option<JoinHandle<()>>,
}

/// A queued method call: the task to run plus the reply channel.
type Invocation<S> = (Task<S>, Sender<Vec<f32>>);

impl<S: Send + 'static> ActorHandle<S> {
    /// Spawns an actor with the given initial state.
    pub fn spawn(mut state: S) -> Self {
        let (tx, rx): (Sender<Invocation<S>>, _) = unbounded();
        let thread = std::thread::spawn(move || {
            while let Ok((task, reply)) = rx.recv() {
                let out = task(&mut state);
                let _ = reply.send(out);
            }
        });
        ActorHandle { tx, thread: Some(thread) }
    }

    /// Invokes a method remotely; returns a future (`actor.method.remote()`).
    pub fn call<F>(&self, f: F) -> Future
    where
        F: FnOnce(&mut S) -> Vec<f32> + Send + 'static,
    {
        let (reply_tx, reply_rx) = unbounded();
        // A dropped receiver just means the actor exited; get() yields
        // empty, matching Ray's failed-task semantics in this harness.
        let _ = self.tx.send((Box::new(f), reply_tx));
        Future { rx: reply_rx }
    }
}

impl<S: Send + 'static> Drop for ActorHandle<S> {
    fn drop(&mut self) {
        // Close the mailbox, then join the worker.
        let (dummy_tx, _) = unbounded();
        drop(std::mem::replace(&mut self.tx, dummy_tx));
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// State of one Ray-like rollout actor: a policy replica plus its
/// environment list.
pub struct RolloutActor {
    policy: PpoPolicy,
    envs: Vec<Box<dyn Environment>>,
    rng: rand::rngs::StdRng,
    /// Sequential environment steps executed (scoped to this actor, also
    /// feeding the global `baseline.env_steps` total).
    pub env_steps: Counter,
    /// Per-environment (unbatched) inference calls executed (scoped,
    /// also feeding `baseline.infer_calls`).
    pub infer_calls: Counter,
}

impl RolloutActor {
    /// Creates the actor state.
    pub fn new(policy: PpoPolicy, envs: Vec<Box<dyn Environment>>, seed: u64) -> Self {
        RolloutActor {
            policy,
            envs,
            rng: msrl_tensor::init::rng(seed),
            env_steps: Counter::scoped("baseline.env_steps"),
            infer_calls: Counter::scoped("baseline.infer_calls"),
        }
    }

    /// One rollout: steps every environment *sequentially*, with one
    /// (unbatched) inference per environment per step — the structure
    /// the paper measures against in Fig. 9a.
    pub fn sample(&mut self, steps: usize) -> Result<SampleBatch> {
        let mut per_env_batches = Vec::with_capacity(self.envs.len());
        for env in self.envs.iter_mut() {
            let obs_dim = env.obs_dim();
            let spec = env.action_spec();
            let mut obs = env.reset();
            let mut rows = Vec::with_capacity(steps);
            for _ in 0..steps {
                let row = obs.reshape(&[1, obs_dim]).map_err(FdgError::Tensor)?;
                // Unbatched inference on the CPU.
                let out = self.policy.act(&row, &mut self.rng)?;
                self.infer_calls.add(1);
                let action = if spec.is_discrete() {
                    Action::Discrete(out.actions.data()[0] as usize)
                } else {
                    Action::Continuous(
                        out.actions.reshape(&[spec.policy_width()]).map_err(FdgError::Tensor)?,
                    )
                };
                let step = env.step(&action);
                self.env_steps.add(1);
                let next = if step.done { env.reset() } else { step.obs.clone() };
                rows.push(step_batch(
                    row,
                    out.actions,
                    Tensor::from_vec(vec![step.reward], &[1]).map_err(FdgError::Tensor)?,
                    step.obs.reshape(&[1, obs_dim]).map_err(FdgError::Tensor)?,
                    vec![step.done],
                    out.log_probs,
                    out.values.expect("PPO policy has a critic"),
                ));
                obs = next;
            }
            let mut b = SampleBatch::concat(&rows)?;
            b.segment_len = steps;
            per_env_batches.push(b);
        }
        SampleBatch::concat(&per_env_batches)
    }

    /// Installs fresh weights.
    pub fn set_weights(&mut self, flat: &[f32]) -> Result<()> {
        self.policy.unflatten(flat)
    }
}

/// The outcome of a baseline training run.
#[derive(Debug, Clone, Default)]
pub struct BaselineReport {
    /// Mean finished-episode reward per iteration (carried forward).
    pub iteration_rewards: Vec<f32>,
    /// Total sequential environment steps across all actors.
    pub env_steps: u64,
    /// Total unbatched inference calls across all actors.
    pub infer_calls: u64,
}

/// Runs Ray-like PPO: remote rollout actors, a driver-local learner.
///
/// # Errors
///
/// Propagates learner failures.
pub fn run_raylike_ppo<E, F>(
    make_env: F,
    actors: usize,
    envs_per_actor: usize,
    steps_per_iter: usize,
    iterations: usize,
    hidden: &[usize],
    seed: u64,
) -> Result<BaselineReport>
where
    E: Environment + 'static,
    F: Fn(usize, usize) -> E,
{
    let probe = make_env(0, 0);
    let (obs_dim, spec) = (probe.obs_dim(), probe.action_spec());
    drop(probe);
    let policy = if spec.is_discrete() {
        PpoPolicy::discrete(obs_dim, spec.policy_width(), hidden, seed)
    } else {
        PpoPolicy::continuous(obs_dim, spec.policy_width(), hidden, seed)
    };
    let mut learner = PpoLearner::new(policy.clone(), PpoConfig::default());

    let mut handles = Vec::new();
    let mut counters = Vec::new();
    for a in 0..actors.max(1) {
        let envs: Vec<Box<dyn Environment>> = (0..envs_per_actor.max(1))
            .map(|i| Box::new(make_env(a, i)) as Box<dyn Environment>)
            .collect();
        let state = RolloutActor::new(policy.clone(), envs, seed + 1 + a as u64);
        counters.push((state.env_steps.clone(), state.infer_calls.clone()));
        handles.push(ActorHandle::spawn(state));
    }

    let mut report = BaselineReport::default();
    for _ in 0..iterations {
        // Fan out remote sample() calls, then gather.
        let futures: Vec<Future> = handles
            .iter()
            .map(|h| {
                h.call(move |s: &mut RolloutActor| {
                    s.sample(steps_per_iter)
                        .map(|b| {
                            let reward_sum: f32 = b.rewards.data().iter().sum();
                            let mut wire = vec![reward_sum];
                            wire.extend(msrl_wire_encode(&b));
                            wire
                        })
                        .unwrap_or_default()
                })
            })
            .collect();
        let mut batches = Vec::new();
        let mut reward_sum = 0.0;
        for f in futures {
            let wire = f.get();
            if wire.is_empty() {
                continue;
            }
            reward_sum += wire[0];
            batches.push(msrl_wire_decode(&wire[1..])?);
        }
        let batch = SampleBatch::concat(&batches)?;
        learner.learn(&batch)?;
        let weights = learner.policy_params();
        let syncs: Vec<Future> = handles
            .iter()
            .map(|h| {
                let w = weights.clone();
                h.call(move |s: &mut RolloutActor| {
                    s.set_weights(&w).map(|_| vec![1.0]).unwrap_or_default()
                })
            })
            .collect();
        for s in syncs {
            s.get();
        }
        let total_steps = (actors * envs_per_actor * steps_per_iter).max(1);
        report.iteration_rewards.push(reward_sum / total_steps as f32);
    }
    report.env_steps = counters.iter().map(|(e, _)| e.get()).sum();
    report.infer_calls = counters.iter().map(|(_, i)| i.get()).sum();
    Ok(report)
}

// Minimal local wire helpers (mirrors msrl-runtime's codec; duplicated to
// keep the baseline crate independent of the MSRL runtime).
fn msrl_wire_encode(batch: &SampleBatch) -> Vec<f32> {
    let n = batch.len();
    let obs_w = batch.obs.len().checked_div(n).unwrap_or(0);
    let act_w = batch.actions.len().checked_div(n).unwrap_or(0);
    let mut out = vec![n as f32, obs_w as f32, act_w as f32, batch.segment_len as f32];
    out.extend_from_slice(batch.obs.data());
    out.extend_from_slice(batch.actions.data());
    out.extend_from_slice(batch.rewards.data());
    out.extend_from_slice(batch.next_obs.data());
    out.extend(batch.dones.iter().map(|&d| if d { 1.0 } else { 0.0 }));
    out.extend_from_slice(batch.log_probs.data());
    out.extend_from_slice(batch.values.data());
    out
}

fn msrl_wire_decode(wire: &[f32]) -> Result<SampleBatch> {
    let err = || FdgError::MissingKernel { op: "raylike wire decode".into() };
    if wire.len() < 4 {
        return Err(err());
    }
    let (n, obs_w, act_w, seg) =
        (wire[0] as usize, wire[1] as usize, wire[2] as usize, wire[3] as usize);
    if wire.len() != 4 + n * (2 * obs_w + act_w + 4) {
        return Err(err());
    }
    let mut at = 4;
    let mut take = |len: usize| {
        let s = wire[at..at + len].to_vec();
        at += len;
        s
    };
    Ok(SampleBatch {
        obs: Tensor::from_vec(take(n * obs_w), &[n, obs_w]).map_err(FdgError::Tensor)?,
        actions: if act_w == 1 {
            Tensor::from_vec(take(n), &[n]).map_err(FdgError::Tensor)?
        } else {
            Tensor::from_vec(take(n * act_w), &[n, act_w]).map_err(FdgError::Tensor)?
        },
        rewards: Tensor::from_vec(take(n), &[n]).map_err(FdgError::Tensor)?,
        next_obs: Tensor::from_vec(take(n * obs_w), &[n, obs_w]).map_err(FdgError::Tensor)?,
        dones: take(n).iter().map(|&d| d > 0.5).collect(),
        log_probs: Tensor::from_vec(take(n), &[n]).map_err(FdgError::Tensor)?,
        values: Tensor::from_vec(take(n), &[n]).map_err(FdgError::Tensor)?,
        segment_len: seg,
    })
}

/// Counts the work the MSRL side does for the same rollout volume —
/// *batched* inference (one fused call per step) and parallel env
/// stepping — for the mechanism comparison of Fig. 9a.
pub fn msrl_equivalent_infer_calls(steps_per_iter: usize, iterations: usize) -> u64 {
    (steps_per_iter * iterations) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrl_env::cartpole::CartPole;

    #[test]
    fn actor_handle_executes_remote_calls() {
        let h = ActorHandle::spawn(10i64);
        let f = h.call(|s: &mut i64| {
            *s += 5;
            vec![*s as f32]
        });
        assert_eq!(f.get(), vec![15.0]);
        let f2 = h.call(|s: &mut i64| vec![*s as f32]);
        assert_eq!(f2.get(), vec![15.0], "state persists across calls");
    }

    #[test]
    fn rollout_actor_steps_sequentially() {
        let policy = PpoPolicy::discrete(4, 2, &[8], 0);
        let envs: Vec<Box<dyn Environment>> =
            (0..3).map(|i| Box::new(CartPole::new(i)) as Box<dyn Environment>).collect();
        let mut actor = RolloutActor::new(policy, envs, 1);
        let batch = actor.sample(10).unwrap();
        assert_eq!(batch.len(), 30);
        // Sequential structure: 30 env steps AND 30 separate inference
        // calls (MSRL would do 10 fused calls).
        assert_eq!(actor.env_steps.get(), 30);
        assert_eq!(actor.infer_calls.get(), 30);
        assert_eq!(msrl_equivalent_infer_calls(10, 1), 10);
    }

    #[test]
    fn raylike_ppo_improves_cartpole() {
        let report =
            run_raylike_ppo(|a, i| CartPole::new((a * 11 + i) as u64), 2, 2, 48, 20, &[32], 3)
                .unwrap();
        assert_eq!(report.iteration_rewards.len(), 20);
        let early: f32 = report.iteration_rewards[..5].iter().sum::<f32>() / 5.0;
        let late: f32 = report.iteration_rewards[15..].iter().sum::<f32>() / 5.0;
        assert!(late >= early, "Ray-like PPO should not regress: {early} → {late}");
        assert_eq!(report.env_steps, 2 * 2 * 48 * 20);
        assert_eq!(report.infer_calls, report.env_steps, "unbatched inference");
    }
}
