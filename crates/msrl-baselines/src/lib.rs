//! # msrl-baselines
//!
//! Re-implementations of the comparator systems in the paper's
//! evaluation (§7.3), built on the same substrates as msrl-rs so the
//! comparisons isolate *architecture*, not implementation quality:
//!
//! * [`raylike`] — an actor-model execution engine in the style of Ray:
//!   stateful actors with mailboxes, remote method calls returning
//!   futures, and a driver that coordinates them. Its PPO implementation
//!   has the two structural properties the paper attributes to Ray's
//!   RLlib: each actor steps its environments *sequentially* on the CPU,
//!   and per-environment inference is not batched/fused.
//! * [`warpdrive`] — a WarpDrive-style monolithic trainer: the entire
//!   loop on one "device" over a batched environment, with one kernel
//!   per pipeline stage (no cross-stage fusion) and a host sync per step.
//!   Kernel-launch counters expose the overhead MSRL's graph compilation
//!   removes (Fig. 10a's mechanism).
//! * [`sequential`] — the single-GPU sequential MARL baseline of
//!   Fig. 11a: one device trains all agents in turn, with a memory
//!   accountant that reports OOM when the joint working set exceeds the
//!   device budget.

#![warn(missing_docs)]

pub mod raylike;
pub mod sequential;
pub mod warpdrive;
