//! End-to-end contract for communication/computation overlap.
//!
//! Everything runs in one test body because the telemetry enable flag,
//! the event sink and the counter registry are process-global and
//! `cargo test` runs sibling tests on parallel threads.

use std::time::Duration;

use msrl_algos::ppo::PpoConfig;
use msrl_env::cartpole::CartPole;
use msrl_runtime::exec::{run_dp_a, run_dp_c, DistPpoConfig};

#[test]
fn overlap_contract_end_to_end() {
    msrl_telemetry::set_enabled(false);

    // 1. DP-A with double-buffered weights and staleness bound 1 still
    //    learns. The driver itself asserts the bound on every iteration
    //    (an actor never rolls out on weights more than one iteration
    //    behind), so finishing at all certifies the invariant; the
    //    reward check certifies bounded staleness doesn't break
    //    training.
    let dp_a = DistPpoConfig {
        actors: 2,
        envs_per_actor: 2,
        steps_per_iter: 64,
        iterations: 25,
        hidden: vec![32],
        seed: 1,
        overlap: true,
        staleness: 1,
        ppo: PpoConfig { lr: 2e-3, ..PpoConfig::default() },
        ..DistPpoConfig::default()
    };
    let report = run_dp_a(|a, i| CartPole::new((a * 7 + i) as u64), &dp_a).expect("dp_a runs");
    assert_eq!(report.iteration_rewards.len(), 25);
    assert!(
        report.recent_reward(5) > report.early_reward(5),
        "DP-A must improve under staleness-1 overlap: {} → {}",
        report.early_reward(5),
        report.recent_reward(5)
    );

    // 2. DP-C's fused collective is bit-identical to the unfused path:
    //    overlap on/off must end with exactly the same policy.
    let dp_c = DistPpoConfig {
        actors: 3,
        envs_per_actor: 2,
        steps_per_iter: 32,
        iterations: 5,
        hidden: vec![16],
        seed: 9,
        staleness: 1,
        ..DistPpoConfig::default()
    };
    let run_c = |overlap: bool| {
        let dist = DistPpoConfig { overlap, ..dp_c.clone() };
        run_dp_c(|a, i| CartPole::new((a * 31 + i) as u64), &dist).expect("dp_c runs")
    };
    let fused = run_c(true);
    let unfused = run_c(false);
    assert_eq!(
        fused.final_params.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        unfused.final_params.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "fused and unfused DP-C must produce bit-identical weights"
    );
    assert_eq!(
        fused.iteration_rewards, unfused.iteration_rewards,
        "fused and unfused DP-C must report identical reward curves"
    );

    // 3. Trace shape: with overlap on, DP-C pays one collective per
    //    final epoch — the returns ride the fused all-reduce, so no
    //    standalone all_gather span may appear.
    msrl_telemetry::set_enabled(true);
    msrl_telemetry::clear_events();
    msrl_telemetry::reset_counters();
    run_c(true);
    let events = msrl_telemetry::drain();
    assert!(
        !events.iter().any(|e| e.name == "comm.all_gather"),
        "fused DP-C must not open a standalone comm.all_gather span"
    );
    assert!(
        events.iter().any(|e| e.name == "comm.all_reduce_fused"),
        "fused DP-C must trace its fused collective"
    );

    // 4. Under wire latency, DP-A actors actually roll out on stale
    //    weights while the next broadcast is in flight: the overlap span
    //    and the staleness counter must both fire.
    msrl_telemetry::clear_events();
    msrl_telemetry::reset_counters();
    let latent = DistPpoConfig {
        actors: 2,
        envs_per_actor: 1,
        steps_per_iter: 32,
        iterations: 6,
        hidden: vec![16],
        seed: 4,
        overlap: true,
        staleness: 1,
        link_latency: Duration::from_millis(5),
        ..DistPpoConfig::default()
    };
    run_dp_a(|a, i| CartPole::new((a * 3 + i) as u64), &latent).expect("dp_a runs");
    let events = msrl_telemetry::drain();
    let stale = msrl_telemetry::counter_total("comm.stale_iters");
    assert!(stale > 0, "latency must force stale rollouts, got {stale}");
    assert!(
        events.iter().any(|e| e.name == "comm.overlap"),
        "stale rollouts must be wrapped in a comm.overlap span"
    );
    msrl_telemetry::set_enabled(false);
}
