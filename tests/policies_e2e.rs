//! Workspace integration tests: every distribution policy end-to-end.
//!
//! Each test deploys the FDG under one of Tab. 2's policies *and* runs
//! the corresponding real threaded driver on a small workload, asserting
//! both the placement properties the paper describes and that training
//! actually works.

use msrl_core::config::{AlgorithmConfig, DeploymentConfig, PolicyName};
use msrl_env::batched::BatchedCartPole;
use msrl_env::cartpole::CartPole;
use msrl_env::mpe::SimpleSpread;
use msrl_runtime::exec::{
    run_dp_a, run_dp_b, run_dp_c, run_dp_d, run_dp_e, run_dp_f, DistPpoConfig, DpDConfig, DpEConfig,
};
use msrl_runtime::policy::Role;
use msrl_runtime::Coordinator;

fn dist(seed: u64) -> DistPpoConfig {
    DistPpoConfig {
        actors: 2,
        envs_per_actor: 2,
        steps_per_iter: 48,
        iterations: 20,
        hidden: vec![32],
        seed,
        ..DistPpoConfig::default()
    }
}

fn deploy(policy: PolicyName) -> (AlgorithmConfig, DeploymentConfig) {
    (AlgorithmConfig::ppo(2, 2), DeploymentConfig::workers(4, 2, policy))
}

#[test]
fn dp_a_placement_and_training() {
    let (algo, dep) = deploy(PolicyName::SingleLearnerCoarse);
    let d = Coordinator::deploy_ppo(&algo, &dep, 4, 2, 32).unwrap();
    assert_eq!(d.placement.count(Role::Learner), 1, "single learner");
    assert_eq!(d.placement.count(Role::ActorEnv), 2, "replicated actors");
    let report = run_dp_a(|a, i| CartPole::new((a * 2 + i) as u64), &dist(1)).unwrap();
    assert!(report.recent_reward(5) > report.early_reward(5));
}

#[test]
fn dp_b_placement_and_training() {
    let (algo, dep) = deploy(PolicyName::SingleLearnerFine);
    let d = Coordinator::deploy_ppo(&algo, &dep, 4, 2, 32).unwrap();
    assert!(!d.placement.role_on_gpu(Role::ActorEnv), "actor+env fused on CPU");
    assert!(d.placement.role_on_gpu(Role::Learner), "learner on GPU");
    let report = run_dp_b(|a, i| CartPole::new((a * 2 + i) as u64), &dist(2)).unwrap();
    assert!(report.recent_reward(5) > report.early_reward(5));
}

#[test]
fn dp_c_placement_and_training() {
    let (algo, dep) = deploy(PolicyName::MultipleLearners);
    let d = Coordinator::deploy_ppo(&algo, &dep, 4, 2, 32).unwrap();
    assert!(d.placement.count(Role::ActorLearner) >= 2, "fused replicas");
    assert_eq!(d.placement.count(Role::Learner), 0, "no separate learner");
    let report = run_dp_c(|a, i| CartPole::new((a * 2 + i) as u64), &dist(3)).unwrap();
    assert!(report.recent_reward(5) > report.early_reward(5));
}

#[test]
fn dp_d_placement_and_training() {
    let (algo, dep) = deploy(PolicyName::GpuOnly);
    let d = Coordinator::deploy_ppo(&algo, &dep, 4, 2, 32).unwrap();
    assert_eq!(d.placement.count(Role::FusedLoop), 8, "one fused loop per GPU");
    let cfg = DpDConfig {
        devices: 2,
        episodes: 6,
        hidden: vec![16],
        ppo: Default::default(),
        seed: 4,
        fusion: msrl_tensor::par::fusion_enabled(),
    };
    let report = run_dp_d(|r| BatchedCartPole::new(8, r as u64), &cfg).unwrap();
    assert_eq!(report.iteration_rewards.len(), 6);
    assert!(report.iteration_rewards.iter().all(|r| r.is_finite()));
}

#[test]
fn dp_e_placement_and_training() {
    let (mut algo, dep) = deploy(PolicyName::Environments);
    algo.agents = 3;
    algo.actors = 1;
    let d = Coordinator::deploy_ppo(&algo, &dep, 4, 2, 32).unwrap();
    assert!(d.placement.count(Role::Env) > 0, "dedicated env fragments");
    let cfg = DpEConfig {
        episodes: 8,
        hidden: vec![16],
        ppo: Default::default(),
        seed: 5,
        fusion: msrl_tensor::par::fusion_enabled(),
    };
    let report = run_dp_e(|| SimpleSpread::new(3, 1).with_horizon(12), &cfg).unwrap();
    assert_eq!(report.iteration_rewards.len(), 8);
}

#[test]
fn dp_f_placement_and_training() {
    let (algo, dep) = deploy(PolicyName::Central);
    let d = Coordinator::deploy_ppo(&algo, &dep, 4, 2, 32).unwrap();
    assert_eq!(d.placement.count(Role::ParamServer), 1, "one parameter server");
    let report = run_dp_f(|a, i| CartPole::new((a * 2 + i) as u64), &dist(6)).unwrap();
    assert!(report.recent_reward(5) > report.early_reward(5));
}

/// The paper's central claim, as an executable assertion: the FDG is a
/// function of the algorithm alone; policies only change placement.
#[test]
fn fdg_is_invariant_across_policies() {
    let algo = AlgorithmConfig::ppo(2, 2);
    let fdgs: Vec<_> = [
        PolicyName::SingleLearnerCoarse,
        PolicyName::SingleLearnerFine,
        PolicyName::MultipleLearners,
        PolicyName::GpuOnly,
        PolicyName::Environments,
        PolicyName::Central,
    ]
    .into_iter()
    .map(|p| {
        let dep = DeploymentConfig::workers(4, 2, p);
        Coordinator::deploy_ppo(&algo, &dep, 4, 2, 32).unwrap().fdg
    })
    .collect();
    for f in &fdgs[1..] {
        assert_eq!(f, &fdgs[0]);
    }
}
