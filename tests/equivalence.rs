//! Workspace integration tests: distribution must not change algorithm
//! semantics.
//!
//! The FDG abstraction's correctness contract is that partitioning,
//! replication and fusion change *where* computation runs, never *what*
//! it computes. These tests pin that contract across crates.

use msrl_core::api::Learner;
use msrl_env::cartpole::CartPole;
use msrl_runtime::exec::{run_dp_a, run_dp_c, run_dp_f, DistPpoConfig};

fn dist(actors: usize, seed: u64, iterations: usize) -> DistPpoConfig {
    DistPpoConfig {
        actors,
        envs_per_actor: 2,
        steps_per_iter: 32,
        iterations,
        hidden: vec![16],
        seed,
        ..DistPpoConfig::default()
    }
}

/// With a single fragment replica, DP-A (trajectory exchange) and DP-F
/// (gradient push/pull) see the same rollouts and run mathematically
/// related updates; both must learn, and DP-A twice with the same seed
/// must be bit-identical (the runtime is deterministic).
#[test]
fn dp_a_is_deterministic_under_fixed_seed() {
    let make = |a: usize, i: usize| CartPole::new((a * 3 + i) as u64);
    let r1 = run_dp_a(make, &dist(2, 9, 6)).unwrap();
    let r2 = run_dp_a(make, &dist(2, 9, 6)).unwrap();
    assert_eq!(r1.final_params, r2.final_params, "bit-identical replay");
    assert_eq!(r1.iteration_rewards, r2.iteration_rewards);
}

/// DP-C with one replica degenerates to plain single-learner PPO: its
/// AllReduce averages one contribution, so training must match the
/// undistributed learner applying its own gradients.
#[test]
fn single_replica_dp_c_matches_local_learning() {
    use msrl_algos::ppo::{PpoActor, PpoLearner, PpoPolicy};
    use msrl_algos::rollout::collect;
    use msrl_core::api::Actor;
    use msrl_env::VecEnv;

    let d = dist(1, 11, 4);
    let distributed = run_dp_c(|a, i| CartPole::new((a * 3 + i) as u64), &d).unwrap();

    // Local re-enactment with identical seeds and schedule.
    let policy = PpoPolicy::discrete(4, 2, &d.hidden, d.seed);
    let mut actor = PpoActor::new(policy.clone(), d.seed + 1);
    let mut learner = PpoLearner::new(policy, d.ppo.clone());
    let mut envs = VecEnv::from_fn(2, |i| CartPole::new(i as u64));
    for _ in 0..d.iterations {
        let batch = collect(&mut actor, &mut envs, d.steps_per_iter).unwrap();
        for _ in 0..d.ppo.epochs {
            let g = learner.grads(&batch).unwrap();
            learner.apply_grads(&g).unwrap();
        }
        actor.set_policy_params(&learner.policy_params()).unwrap();
    }
    let local = learner.policy_params();
    assert_eq!(distributed.final_params.len(), local.len());
    for (a, b) in distributed.final_params.iter().zip(&local) {
        assert!((a - b).abs() < 1e-5, "distributed {a} vs local {b}");
    }
}

/// All drivers accept the same environment factory and the same
/// hyper-parameters — the "no algorithm change" property, typed.
#[test]
fn drivers_share_one_configuration_type() {
    let d = dist(2, 13, 3);
    let make = |a: usize, i: usize| CartPole::new((a + i) as u64);
    let a = run_dp_a(make, &d).unwrap();
    let c = run_dp_c(make, &d).unwrap();
    let f = run_dp_f(make, &d).unwrap();
    for r in [&a, &c, &f] {
        assert_eq!(r.iteration_rewards.len(), 3);
        assert!(!r.final_params.is_empty());
    }
    // Same seed ⇒ same initial policy across drivers: their first
    // iteration sees identical rollouts, so first-iteration rewards agree
    // for the policies that collect rollouts actor-side.
    assert_eq!(a.iteration_rewards[0], c.iteration_rewards[0]);
}
