//! Workspace integration test: the full FDG pipeline end-to-end.
//!
//! Traces the PPO training-loop body, partitions it with Algorithm 2,
//! then *executes the FDG itself* through the operator interpreter with
//! real kernels bound to the macro ops: `EnvReset`/`EnvStep` drive real
//! CartPole instances, `SampleAction` uses the real categorical sampler,
//! and `Learn` runs the real PPO learner. This is the complete
//! coordinator→worker flow of the paper's Fig. 6 inside one process.

use std::cell::RefCell;
use std::rc::Rc;

use msrl_algos::buffer::{step_batch, TrajectoryBuffer};
use msrl_algos::ppo::{PpoConfig, PpoLearner, PpoPolicy};
use msrl_core::config::AlgorithmConfig;
use msrl_core::interp::Interpreter;
use msrl_core::partition::build_fdg;
use msrl_core::OpKind;
use msrl_env::cartpole::CartPole;
use msrl_env::{Action, VecEnv};
use msrl_runtime::trace_algos::trace_ppo;
use msrl_tensor::dist::Categorical;
use msrl_tensor::Tensor;

#[test]
fn traced_fdg_executes_one_training_iteration_with_real_kernels() {
    let n_envs = 4;
    let obs_dim = 4;
    let n_actions = 2;
    let mut cfg = AlgorithmConfig::ppo(1, n_envs);
    cfg.duration = 16;
    let graph = trace_ppo(&cfg, obs_dim, n_actions, 8);
    let fdg = build_fdg(graph).unwrap();
    fdg.check_invariants().unwrap();

    // Shared state the kernels close over.
    let envs = Rc::new(RefCell::new(VecEnv::from_fn(n_envs, |i| {
        CartPole::new(i as u64).with_horizon(200)
    })));
    let policy = PpoPolicy::discrete(obs_dim, n_actions, &[8], 0);
    let learner = Rc::new(RefCell::new(PpoLearner::new(policy.clone(), PpoConfig::default())));
    let rng = Rc::new(RefCell::new(msrl_tensor::init::rng(7)));
    let buffer = Rc::new(RefCell::new(TrajectoryBuffer::new()));
    let last_obs = Rc::new(RefCell::new(Tensor::zeros(&[n_envs, obs_dim])));
    // (obs, actions, log_probs, values) awaiting their step results.
    type PendingStep = Option<(Tensor, Tensor, Tensor, Tensor)>;
    let pending: Rc<RefCell<PendingStep>> = Rc::new(RefCell::new(None));

    let mut interp = Interpreter::new();
    // Policy parameters for the traced seven-layer "actor_net" are bound
    // as zeros of the traced shapes (the traced inference path is the
    // structural twin of the real one; action *sampling* uses the real
    // policy below so learning has coherent behaviour statistics).
    for node in &fdg.graph.nodes {
        if let OpKind::Param { name } = &node.kind {
            interp.bind_param(name, Tensor::zeros(&node.shape));
        }
    }
    {
        let envs = Rc::clone(&envs);
        let last_obs = Rc::clone(&last_obs);
        interp.register(
            "EnvReset",
            Box::new(move |_node, _ins| {
                let obs = envs.borrow_mut().reset();
                *last_obs.borrow_mut() = obs.clone();
                Ok(obs)
            }),
        );
    }
    {
        let policy = policy.clone();
        let rng = Rc::clone(&rng);
        let last_obs = Rc::clone(&last_obs);
        let pending = Rc::clone(&pending);
        interp.register(
            "SampleAction",
            Box::new(move |_node, _ins| {
                // Real inference + sampling on the current observations.
                let obs = last_obs.borrow().clone();
                let logits = policy.actor.infer(&obs)?;
                let values = policy.values(&obs)?;
                let dist = Categorical::from_logits(&logits)?;
                let acts = dist.sample(&mut rng.borrow_mut());
                let log_probs = dist.log_prob(&acts)?;
                let actions =
                    Tensor::from_vec(acts.iter().map(|&a| a as f32).collect(), &[acts.len()])
                        .map_err(msrl_core::FdgError::Tensor)?;
                *pending.borrow_mut() = Some((obs, actions.clone(), log_probs, values));
                Ok(actions)
            }),
        );
    }
    {
        let envs = Rc::clone(&envs);
        let last_obs = Rc::clone(&last_obs);
        let pending = Rc::clone(&pending);
        let buffer = Rc::clone(&buffer);
        let mut last_rewards = Tensor::zeros(&[n_envs]);
        interp.register(
            "EnvStep",
            Box::new(move |node, ins| {
                if ins.len() == 1 {
                    // First EnvStep node: perform the step.
                    let actions: Vec<Action> =
                        ins[0].data().iter().map(|&a| Action::Discrete(a as usize)).collect();
                    let step = envs.borrow_mut().step(&actions);
                    let (obs, actions_t, log_probs, values) =
                        pending.borrow_mut().take().expect("SampleAction ran");
                    buffer.borrow_mut().insert(step_batch(
                        obs,
                        actions_t,
                        step.rewards.clone(),
                        step.obs.clone(),
                        step.dones.clone(),
                        log_probs,
                        values,
                    ));
                    *last_obs.borrow_mut() = step.obs.clone();
                    last_rewards = step.rewards;
                    Ok(step.obs)
                } else {
                    let _ = node;
                    Ok(last_rewards.clone())
                }
            }),
        );
    }
    interp.register("ReplayInsert", Box::new(|node, _ins| Ok(Tensor::zeros(&node.shape))));
    {
        let buffer = Rc::clone(&buffer);
        interp.register(
            "ReplaySample",
            Box::new(move |node, _ins| {
                // The traced node's declared shape is a capacity bound;
                // drain whatever the env loop produced.
                let _ = node;
                let n = buffer.borrow().transitions();
                Ok(Tensor::full(&[n.max(1)], 0.0))
            }),
        );
    }
    {
        let learner = Rc::clone(&learner);
        let buffer = Rc::clone(&buffer);
        interp.register(
            "Learn",
            Box::new(move |_node, _ins| {
                use msrl_core::api::Learner as _;
                let batch = buffer.borrow_mut().drain_env_major()?;
                let loss = learner.borrow_mut().learn(&batch)?;
                Ok(Tensor::scalar(loss))
            }),
        );
    }
    {
        let learner = Rc::clone(&learner);
        interp.register(
            "ReadParams",
            Box::new(move |_node, _ins| {
                use msrl_core::api::Learner as _;
                let p = learner.borrow().policy_params();
                let n = p.len();
                Tensor::from_vec(p, &[n]).map_err(msrl_core::FdgError::Tensor)
            }),
        );
    }

    // Drive the FDG. The graph is the training loop's *body*: one
    // evaluation performs reset → inference → sampling → env step →
    // buffer exchange → learn → weight read (the runtime's fragment
    // driver repeats this per iteration).
    let before = {
        use msrl_core::api::Learner as _;
        learner.borrow().policy_params()
    };
    let values = interp.eval(&fdg.graph).unwrap();
    // The Learn node produced a real loss; ReadParams carried the
    // policy's weight payload.
    let learn_id = fdg.graph.nodes.iter().find(|n| n.kind == OpKind::Learn).unwrap().id;
    assert!(values[learn_id].item().unwrap().is_finite());
    let params_id = fdg.graph.nodes.iter().find(|n| n.kind == OpKind::ReadParams).unwrap().id;
    let after = values[params_id].data().to_vec();
    assert_eq!(after.len(), before.len());
    assert_ne!(after, before, "one FDG execution performed a real update");
}
