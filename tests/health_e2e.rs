//! End-to-end run-health contract (DESIGN §3.15): an induced mid-run
//! NaN must be caught by the watchdog within one iteration, embed a
//! critical finding in the schema-v3 metrics stream, trigger a
//! flight-recorder dump carrying the health verdict, and convict the
//! completed stream on replay (the `doctor` path).
//!
//! One test body: the health gate, metrics sink, flight recorder and
//! registry are process-global.
//!
//! Set `MSRL_HEALTH_E2E_KEEP=<path>` to keep a copy of the poisoned
//! stream — CI uses this to demonstrate `doctor` exiting non-zero on a
//! genuinely unhealthy run.

use msrl_env::cartpole::CartPole;
use msrl_runtime::exec::{run_dp_a, DistPpoConfig};

#[test]
fn induced_nan_fires_watchdog_dump_and_doctor() {
    msrl_telemetry::set_health_enabled(true);
    let tmp = std::env::temp_dir().join(format!("msrl-health-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).expect("temp dir creatable");
    msrl_telemetry::flightrec::set_dump_dir(tmp.to_str().expect("utf8 temp path"));
    let metrics_path = tmp.join("nan-run.jsonl");
    msrl_telemetry::set_metrics_file(metrics_path.to_str());

    let dist = DistPpoConfig {
        actors: 2,
        envs_per_actor: 2,
        steps_per_iter: 32,
        iterations: 4,
        hidden: vec![16],
        seed: 3,
        ..DistPpoConfig::default()
    };
    // Inject at the run's last (0-based) iteration: the learner's
    // post-learn weights are scaled to infinity there, so the final
    // broadcast is poisoned but drained unused by the exiting actors.
    std::env::set_var("MSRL_FAULT_NAN_ITER", (dist.iterations - 1).to_string());
    let report = run_dp_a(|a, i| CartPole::new((a * 3 + i) as u64), &dist)
        .expect("poisoned dp_a run still completes");
    std::env::remove_var("MSRL_FAULT_NAN_ITER");
    msrl_telemetry::set_metrics_file(None);
    assert!(
        report.final_params.iter().any(|v| !v.is_finite()),
        "the fault injection must actually poison the final weights"
    );

    // The stream upgraded itself to schema v3 and still validates.
    let stream = std::fs::read_to_string(&metrics_path).expect("metrics file written");
    assert!(
        stream.contains("\"schema\": \"msrl.run_event.v3\""),
        "health-on events carry the v3 health block"
    );
    let lines = msrl_telemetry::validate_metrics(&stream).expect("poisoned v3 stream validates");
    assert_eq!(lines, dist.iterations, "one event per iteration");

    // Detection within one iteration: the injection iteration's own
    // event carries the critical nonfinite finding; every earlier event
    // is clean.
    let events: Vec<&str> = stream.lines().filter(|l| !l.trim().is_empty()).collect();
    let last = events.last().expect("stream has events");
    assert!(last.contains("\"nonfinite\": true"), "poisoned event flags nonfinite: {last}");
    assert!(last.contains("\"detector\": \"nonfinite\""), "nonfinite detector fired: {last}");
    assert!(last.contains("\"severity\": \"critical\""), "the firing is critical: {last}");
    for clean in &events[..events.len() - 1] {
        assert!(
            clean.contains("\"status\": \"ok\"") && clean.contains("\"nonfinite\": false"),
            "pre-injection events stay healthy: {clean}"
        );
        assert!(
            !clean.contains("\"grad_norm\": null"),
            "learner-side events carry the sentinel gauges: {clean}"
        );
    }

    // Replay (the doctor path) convicts the completed stream.
    let verdict = msrl_telemetry::replay_stream(&stream).expect("stream replays");
    assert_eq!(verdict.status, msrl_telemetry::Severity::Critical, "doctor verdict is critical");
    assert!(verdict.findings.iter().any(|f| f.detector.contains("nonfinite")));
    assert!(verdict.render().starts_with("verdict: CRITICAL"));

    // The detector firing triggered a flight-recorder dump with the
    // health verdict embedded.
    let dumps: Vec<std::path::PathBuf> = std::fs::read_dir(&tmp)
        .expect("dump dir readable")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("flightrec-") && n.ends_with(".json"))
        })
        .collect();
    assert!(!dumps.is_empty(), "the critical firing dumps the flight recorder");
    let dump = std::fs::read_to_string(&dumps[0]).expect("dump readable");
    msrl_telemetry::flightrec::validate_flightrec(&dump).expect("dump validates");
    assert!(dump.contains("\"health\":"), "dump embeds the health verdict");
    assert!(dump.contains("msrl.health_verdict.v1"), "verdict carries its schema tag");
    assert!(dump.contains("nonfinite"), "verdict names the firing detector");

    // Keep the poisoned stream for the CI doctor demo, or clean up.
    match std::env::var("MSRL_HEALTH_E2E_KEEP") {
        Ok(keep) if !keep.is_empty() => {
            std::fs::copy(&metrics_path, &keep).expect("kept stream copies");
            let _ = std::fs::remove_dir_all(&tmp);
        }
        _ => {
            let _ = std::fs::remove_dir_all(&tmp);
        }
    }
}
