//! Workspace integration tests: the opt-in fast-math tier (`MSRL_TIER=2`)
//! end-to-end.
//!
//! Tier 2 swaps libm transcendentals for vectorized polynomial kernels
//! inside softmax, fused activations, and the elementwise-chain
//! executor. Unlike tiers 0/1 it is *not* bit-identical — its contract
//! is a tolerance (DESIGN §3.14): training must still learn, and final
//! weight norms must stay within the documented envelope of the exact
//! run. These tests pin that contract for DP-A and DP-C on both tensor
//! backends.

use std::sync::Mutex;

use msrl_env::cartpole::CartPole;
use msrl_runtime::exec::{run_dp_a, run_dp_c, DistPpoConfig, TrainingReport};
use msrl_tensor::par::{self, Backend};

/// The tier gate is process-global; tests that flip it must not overlap.
static TIER_LOCK: Mutex<()> = Mutex::new(());

fn dist(seed: u64) -> DistPpoConfig {
    DistPpoConfig {
        actors: 2,
        envs_per_actor: 2,
        steps_per_iter: 48,
        iterations: 20,
        hidden: vec![32],
        seed,
        // lr raised (as in the dp_a driver test) so the improvement
        // margin is robust on this small workload.
        ppo: msrl_algos::ppo::PpoConfig { lr: 2e-3, ..msrl_algos::ppo::PpoConfig::default() },
        ..DistPpoConfig::default()
    }
}

fn l2(params: &[f32]) -> f64 {
    params.iter().map(|&p| f64::from(p) * f64::from(p)).sum::<f64>().sqrt()
}

/// Runs `driver` exactly (tier 1, bit-identical to tier 0) and under the
/// fast-math tier, asserting the §3.14 e2e tolerance contract: the
/// fast-math run still improves its reward, and the final weight L2 norm
/// stays within 25% (relative) of the exact run's. Reward *curves* are
/// not compared point-wise — sampled discrete actions may flip on a
/// sub-ULP logit change, so trajectories legitimately diverge; learning,
/// not bit-equality, is the contract.
fn assert_fastmath_tolerance(
    driver: impl Fn(&DistPpoConfig) -> TrainingReport,
    cfg: &DistPpoConfig,
) {
    for backend in [Backend::Scalar, Backend::Threaded] {
        par::with_backend(backend, || {
            let exact = par::with_tier_level(1, || driver(cfg));
            let fast = par::with_tier_level(2, || driver(cfg));
            assert!(
                fast.recent_reward(5) > fast.early_reward(5),
                "{backend:?}: fast-math run must still learn: {} → {}",
                fast.early_reward(5),
                fast.recent_reward(5)
            );
            assert!(
                exact.recent_reward(5) > exact.early_reward(5),
                "{backend:?}: exact run must learn: {} → {}",
                exact.early_reward(5),
                exact.recent_reward(5)
            );
            let (en, fnm) = (l2(&exact.final_params), l2(&fast.final_params));
            let rel = (en - fnm).abs() / en.max(1e-9);
            assert!(
                rel < 0.25,
                "{backend:?}: final weight norm drifted {rel:.3} (exact {en:.4} vs fast {fnm:.4})"
            );
            assert_eq!(exact.final_params.len(), fast.final_params.len());
        });
    }
}

#[test]
fn dp_a_learns_under_fastmath_tier_within_tolerance() {
    let _g = TIER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    assert_fastmath_tolerance(
        |cfg| run_dp_a(|a, i| CartPole::new((a * 3 + i) as u64), cfg).unwrap(),
        &dist(21),
    );
}

#[test]
fn dp_c_learns_under_fastmath_tier_within_tolerance() {
    let _g = TIER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    assert_fastmath_tolerance(
        |cfg| run_dp_c(|a, i| CartPole::new((a * 3 + i) as u64), cfg).unwrap(),
        &dist(22),
    );
}

/// Tier 2 composes with the cross-actor act server: the batched forward
/// must stay bit-identical to the per-actor path *within* the fast-math
/// tier (both paths route through the same fast kernels).
#[test]
fn act_server_stays_bit_identical_within_fastmath_tier() {
    let _g = TIER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    par::with_tier_level(2, || {
        let base = DistPpoConfig { overlap: false, act_server: false, ..dist(23) };
        let make = |a: usize, i: usize| CartPole::new((a * 3 + i) as u64);
        let plain = run_dp_a(make, &base).unwrap();
        let batched = run_dp_a(make, &DistPpoConfig { act_server: true, ..base }).unwrap();
        assert_eq!(plain.final_params, batched.final_params);
        assert_eq!(plain.iteration_rewards, batched.iteration_rewards);
    });
}
