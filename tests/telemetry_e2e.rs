//! End-to-end telemetry contract: tracing must be an observer, never a
//! participant.
//!
//! Everything runs in one test body because the enable flag, the event
//! sink and the counter registry are process-global and `cargo test`
//! runs sibling tests on parallel threads.

use msrl_core::interp::Interpreter;
use msrl_core::trace::{trace_mlp, TraceCtx};
use msrl_env::cartpole::CartPole;
use msrl_runtime::exec::{run_dp_a, run_dp_c, DistPpoConfig};
use msrl_tensor::Tensor;
use serde::Deserialize;

/// Asserts every line of an untraced metrics stream carries a v2
/// attribution whose components account for the iteration wall time
/// within 2% (they are exact modulo the per-component floor division),
/// with a sane critical path and at least one fragment on it.
fn check_attribution_accounts_for_wall(stream: &str, policy: &str) {
    let mut checked = 0usize;
    for line in stream.lines().filter(|l| !l.trim().is_empty()) {
        let root = serde_json::value_from_str(line).expect("metrics line parses");
        let attr = root.field("attr").unwrap_or_else(|_| panic!("{policy}: event lacks attr"));
        let num = |name: &str| -> u64 {
            attr.field(name).ok().and_then(|v| u64::from_value(v).ok()).unwrap_or(0)
        };
        let wall = num("wall_ns");
        let parts = num("rollout_ns")
            + num("learn_ns")
            + num("comm_ns")
            + num("eval_ns")
            + num("idle_ns")
            + num("slack_ns");
        assert!(
            wall.abs_diff(parts) as f64 <= wall as f64 * 0.02,
            "{policy}: attribution components ({parts} ns) must account for the \
             iteration wall time ({wall} ns) within 2%: {line}"
        );
        let serde::Value::Seq(frags) = attr.field("fragments").expect("fragments array") else {
            panic!("{policy}: fragments is not an array");
        };
        assert!(!frags.is_empty(), "{policy}: at least one fragment attributed");
        let on_path = frags
            .iter()
            .filter(|f| matches!(f.field("critical"), Ok(serde::Value::Bool(true))))
            .count();
        assert!(on_path >= 1, "{policy}: the critical path touches at least one fragment");
        assert!(num("critical_path_ns") > 0, "{policy}: non-trivial critical path");
        checked += 1;
    }
    assert!(checked > 0, "{policy}: stream holds attribution events");
}

/// Evaluates a small traced MLP and returns the raw output bits.
fn mlp_output_bits() -> Vec<u32> {
    let ctx = TraceCtx::new();
    let x = ctx.input("x", &[8, 17]);
    trace_mlp(&ctx, "pi", &x, &[17, 16, 6]);
    let g = ctx.finish();
    let mut interp = Interpreter::new();
    interp.bind_param("pi.w0", Tensor::full(&[17, 16], 0.01));
    interp.bind_param("pi.b0", Tensor::zeros(&[16]));
    interp.bind_param("pi.w1", Tensor::full(&[16, 6], 0.01));
    interp.bind_param("pi.b1", Tensor::zeros(&[6]));
    interp.bind_input("x", Tensor::full(&[8, 17], 0.1));
    let outs = interp.eval(&g).expect("graph evaluates");
    outs.iter().flat_map(|t| t.data().iter().map(|v| v.to_bits())).collect()
}

#[test]
fn telemetry_observes_without_perturbing() {
    // 1. Disabled tracing: the instrumented interpreter records no
    //    events and produces bit-identical results to an enabled run.
    msrl_telemetry::set_enabled(false);
    msrl_telemetry::clear_events();
    let quiet = mlp_output_bits();
    assert!(
        msrl_telemetry::drain().is_empty(),
        "disabled tracing must record nothing from instrumented code"
    );

    msrl_telemetry::set_enabled(true);
    msrl_telemetry::clear_events();
    let ops_before = msrl_telemetry::counter_total("interp.ops");
    let traced = mlp_output_bits();
    assert_eq!(quiet, traced, "tracing must not change computed values");
    assert!(
        msrl_telemetry::counter_total("interp.ops") > ops_before,
        "the interpreter counts the ops it evaluates"
    );

    // 2. Steady-state evaluation does zero per-call planning: a
    //    persistent interpreter compiles each request shape once, and
    //    every repeat is a plan-cache hit — observable through the
    //    always-on `interp.plan_cache.*` counters (under either
    //    `MSRL_FUSION` setting; plans are cached in both modes).
    let ctx = TraceCtx::new();
    let x = ctx.input("x", &[8, 17]);
    trace_mlp(&ctx, "pi", &x, &[17, 16, 6]);
    let g = ctx.finish();
    let mut interp = Interpreter::new();
    interp.bind_param("pi.w0", Tensor::full(&[17, 16], 0.01));
    interp.bind_param("pi.b0", Tensor::zeros(&[16]));
    interp.bind_param("pi.w1", Tensor::full(&[16, 6], 0.01));
    interp.bind_param("pi.b1", Tensor::zeros(&[6]));
    interp.bind_input("x", Tensor::full(&[8, 17], 0.1));
    let first = interp.eval(&g).expect("graph evaluates");
    let hits0 = msrl_telemetry::counter_total("interp.plan_cache.hit");
    let misses0 = msrl_telemetry::counter_total("interp.plan_cache.miss");
    for _ in 0..10 {
        let again = interp.eval(&g).expect("steady-state eval");
        assert_eq!(again.len(), first.len());
        for (a, b) in again.iter().zip(&first) {
            assert_eq!(a.data(), b.data(), "cached plans must not change results");
        }
    }
    assert_eq!(
        msrl_telemetry::counter_total("interp.plan_cache.hit") - hits0,
        10,
        "every steady-state evaluation is a plan-cache hit"
    );
    assert_eq!(
        msrl_telemetry::counter_total("interp.plan_cache.miss") - misses0,
        0,
        "steady state does no per-call planning"
    );

    // 2b. Kernel tier: a hot plan with a pack-eligible weight promotes
    //     exactly once — the `tensor.pack_b` counter moves at the
    //     promotion threshold and never again, so steady-state hot-plan
    //     evaluation performs zero repacking. Pinned on so the contract
    //     holds under either `MSRL_TIER` setting in the CI matrix.
    msrl_tensor::par::with_tier(true, || {
        let ctx = TraceCtx::new();
        let x = ctx.input("x", &[4, 64]);
        let w = ctx.param("w", &[64, 64]);
        let _y = x.matmul(&w);
        let g = ctx.finish();
        let mut interp = Interpreter::new();
        interp.bind_input("x", Tensor::full(&[4, 64], 0.1));
        interp.bind_param("w", Tensor::full(&[64, 64], 0.01));
        let packs0 = msrl_telemetry::counter_total("tensor.pack_b");
        let promos0 = msrl_telemetry::counter_total("interp.tier.promoted");
        let first = interp.eval(&g).expect("tiered graph evaluates");
        for _ in 0..9 {
            let again = interp.eval(&g).expect("hot tiered eval");
            for (a, b) in again.iter().zip(&first) {
                assert_eq!(a.data(), b.data(), "tier promotion must not change results");
            }
        }
        assert_eq!(
            msrl_telemetry::counter_total("interp.tier.promoted") - promos0,
            1,
            "the hot plan promotes exactly once"
        );
        assert_eq!(
            msrl_telemetry::counter_total("tensor.pack_b") - packs0,
            1,
            "steady-state hot-plan evaluation performs zero repacking"
        );
    });

    // 3. A real distributed run under tracing yields a valid Chrome
    //    trace with fragment lanes, phase spans and comm volume.
    msrl_telemetry::clear_events();
    msrl_telemetry::reset_counters();
    let dist = DistPpoConfig {
        actors: 2,
        envs_per_actor: 2,
        steps_per_iter: 32,
        iterations: 3,
        hidden: vec![16],
        seed: 3,
        ..DistPpoConfig::default()
    };
    run_dp_a(|a, i| CartPole::new((a * 3 + i) as u64), &dist).expect("dp_a runs");
    let events = msrl_telemetry::drain();
    let trace = msrl_telemetry::chrome_trace(&events);
    let check = msrl_telemetry::validate_chrome_trace(&trace).expect("trace validates");
    assert!(
        check.fragment_spans > dist.actors,
        "one fragment lane per actor plus the learner, got {}",
        check.fragment_spans
    );

    let report = msrl_telemetry::TelemetryReport::from_events(&events).with_registry();
    for phase in ["phase.rollout", "phase.learn", "phase.weight_sync"] {
        let s = report.span(phase).unwrap_or_else(|| panic!("{phase} must appear"));
        assert!(s.count > 0 && s.p50_ns <= s.p99_ns && s.p99_ns <= s.max_ns);
    }
    assert!(report.counter("comm.bytes_sent").unwrap_or(0) > 0, "comm volume is counted");
    assert!(report.counter("env.steps").unwrap_or(0) > 0, "env steps are counted");

    // 4. The report's JSON form parses with the vendored reader.
    let json = report.to_json();
    serde_json::value_from_str(&json).expect("report JSON parses");
    msrl_telemetry::set_enabled(false);

    // 5. Always-on observability with tracing OFF: a DP-A run streams
    //    one valid RunEvent per iteration to the metrics file, and the
    //    registry-backed report carries real latency quantiles from the
    //    always-on histograms — no MSRL_TRACE required.
    msrl_telemetry::clear_events();
    msrl_telemetry::reset_counters();
    msrl_telemetry::reset_histograms();
    let metrics_path =
        std::env::temp_dir().join(format!("msrl-telemetry-e2e-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&metrics_path);
    msrl_telemetry::set_metrics_file(metrics_path.to_str());
    let emitted0 = msrl_telemetry::run_events_emitted();
    run_dp_a(|a, i| CartPole::new((a * 7 + i) as u64), &dist).expect("dp_a runs untraced");
    assert!(
        msrl_telemetry::drain().is_empty(),
        "the metrics stream must not depend on span recording"
    );
    assert_eq!(
        msrl_telemetry::run_events_emitted() - emitted0,
        dist.iterations as u64,
        "one RunEvent per training iteration"
    );
    let stream = std::fs::read_to_string(&metrics_path).expect("metrics file written");
    let lines = msrl_telemetry::validate_metrics(&stream).expect("every line is a valid RunEvent");
    assert_eq!(lines, dist.iterations, "the file holds exactly this run's events");
    assert!(stream.contains("\"policy\": \"dp_a\""));

    // 5b. The untraced stream upgrades itself past schema v1: every
    //     event carries the critical-path attribution, and the breakdown
    //     accounts for the iteration wall time within 2% — no
    //     MSRL_TRACE, no extra flags. With the health watchdog on (the
    //     default) the line also carries a health block and reads v3;
    //     with MSRL_HEALTH=0 it stays v2. Either way attribution rides.
    assert!(
        stream.contains("\"schema\": \"msrl.run_event.v2\"")
            || stream.contains("\"schema\": \"msrl.run_event.v3\""),
        "untraced events carry attribution (schema v2/v3)"
    );
    check_attribution_accounts_for_wall(&stream, "dp_a");
    msrl_telemetry::set_metrics_file(None);
    let _ = std::fs::remove_file(&metrics_path);

    // 5c. Same contract under a fused data-parallel policy: DP-C has no
    //     dedicated learner, its comm (per-epoch AllReduce) nests inside
    //     phase.learn, and the attribution must still account for wall
    //     time exactly per fragment (validate_metrics) and within 2% in
    //     the summary components.
    msrl_telemetry::reset_histograms();
    let metrics_path_c =
        std::env::temp_dir().join(format!("msrl-telemetry-e2e-c-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&metrics_path_c);
    msrl_telemetry::set_metrics_file(metrics_path_c.to_str());
    run_dp_c(|a, i| CartPole::new((a * 11 + i) as u64), &dist).expect("dp_c runs untraced");
    msrl_telemetry::set_metrics_file(None);
    let stream_c = std::fs::read_to_string(&metrics_path_c).expect("dp_c metrics written");
    let lines_c =
        msrl_telemetry::validate_metrics(&stream_c).expect("dp_c events validate (exact sums)");
    assert_eq!(lines_c, dist.iterations, "one v2 event per DP-C iteration");
    check_attribution_accounts_for_wall(&stream_c, "dp_c");
    let _ = std::fs::remove_file(&metrics_path_c);

    let quiet_report = msrl_telemetry::TelemetryReport::from_events(&[]).with_registry();
    let eval = quiet_report.histogram("fragment.eval").expect("fragment.eval histogram");
    assert_eq!(eval.count, dist.iterations as u64);
    assert!(
        eval.p50_ns > 0 && eval.p50_ns <= eval.p99_ns && eval.p99_ns <= eval.max_ns,
        "non-trivial quantiles: {eval:?}"
    );
    assert!(
        quiet_report.histograms.iter().any(|(name, s)| name.starts_with("comm.") && s.count > 0),
        "at least one comm.* histogram records blocked time: {:?}",
        quiet_report.histograms
    );
    let quiet_json = quiet_report.to_json();
    serde_json::value_from_str(&quiet_json).expect("registry-only report JSON parses");
}
