//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! serde shim.
//!
//! The build environment has no crates.io access, so `syn`/`quote` are
//! unavailable; this macro parses the derive input's `TokenStream` by
//! hand. It supports exactly the shapes the msrl-rs codebase uses:
//!
//! * structs with named fields,
//! * tuple structs (newtype convention: a 1-field tuple struct
//!   serialises as its inner value),
//! * enums with unit, newtype and struct variants (externally tagged,
//!   matching serde's default JSON representation).
//!
//! Generics, lifetimes and `#[serde(...)]` attributes are not supported
//! and produce a compile error naming the offending item.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field: just its name (named) or index (tuple).
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Input {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

fn is_punct(tt: &TokenTree, c: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == c)
}

/// Skips `#[...]` attribute pairs starting at `i`; returns the new index.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len()
        && is_punct(&tokens[i], '#')
        && matches!(&tokens[i + 1], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket)
    {
        i += 2;
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, …) at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        if i < tokens.len()
            && matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Parses the fields of a brace-delimited named-field body.
fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        i = skip_vis(&tokens, i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, found `{other}`"),
        };
        i += 1;
        assert!(
            i < tokens.len() && is_punct(&tokens[i], ':'),
            "serde_derive: expected `:` after field `{name}`"
        );
        i += 1;
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            if is_punct(&tokens[i], '<') {
                depth += 1;
            } else if is_punct(&tokens[i], '>') {
                depth -= 1;
            } else if is_punct(&tokens[i], ',') && depth == 0 {
                i += 1;
                break;
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

/// Counts the fields of a paren-delimited tuple body.
fn count_tuple_fields(group: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    for tt in &tokens {
        if is_punct(tt, '<') {
            depth += 1;
        } else if is_punct(tt, '>') {
            depth -= 1;
        } else if is_punct(tt, ',') && depth == 0 {
            count += 1;
        }
    }
    // A trailing comma does not add a field.
    if is_punct(tokens.last().expect("non-empty"), ',') {
        count -= 1;
    }
    count
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found `{other}`"),
        };
        i += 1;
        let mut fields = Fields::Unit;
        if i < tokens.len() {
            if let TokenTree::Group(g) = &tokens[i] {
                fields = match g.delimiter() {
                    Delimiter::Brace => Fields::Named(parse_named_fields(g.stream())),
                    Delimiter::Parenthesis => Fields::Tuple(count_tuple_fields(g.stream())),
                    other => panic!("serde_derive: unexpected delimiter {other:?}"),
                };
                i += 1;
            }
        }
        // Skip an explicit discriminant, then the separating comma.
        while i < tokens.len() && !is_punct(&tokens[i], ',') {
            i += 1;
        }
        i += 1;
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found `{other}`"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found `{other}`"),
    };
    i += 1;
    if i < tokens.len() && is_punct(&tokens[i], '<') {
        panic!("serde_derive (vendored shim): generic type `{name}` is not supported");
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Input::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                _ => panic!("serde_derive: enum `{name}` has no body"),
            };
            Input::Enum { name, variants: parse_variants(body) }
        }
        other => panic!("serde_derive: cannot derive for `{other} {name}`"),
    }
}

/// Derives the shim's `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let src = match parse_input(input) {
        Input::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Named(fs) => {
                    let mut s = String::from("::serde::Value::Map(::std::vec![");
                    for f in &fs {
                        s.push_str(&format!(
                            "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"
                        ));
                    }
                    s.push_str("])");
                    s
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let mut s = String::from("::serde::Value::Seq(::std::vec![");
                    for idx in 0..n {
                        s.push_str(&format!("::serde::Serialize::to_value(&self.{idx}),"));
                    }
                    s.push_str("])");
                    s
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\
                   fn to_value(&self) -> ::serde::Value {{ {body} }}\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let mut arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(x0) => ::serde::Value::Map(::std::vec![\
                           (\"{vn}\".to_string(), ::serde::Serialize::to_value(x0))]),"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b}),"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![\
                               (\"{vn}\".to_string(), ::serde::Value::Seq(::std::vec![{}]))]),",
                            binds.join(","),
                            items.concat()
                        ));
                    }
                    Fields::Named(fs) => {
                        let items: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::to_value({f})),"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Map(::std::vec![\
                               (\"{vn}\".to_string(), ::serde::Value::Map(::std::vec![{}]))]),",
                            fs.join(","),
                            items.concat()
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\
                   fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\
                 }}"
            )
        }
    };
    src.parse().expect("serde_derive: generated impl must parse")
}

/// Derives the shim's `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let src = match parse_input(input) {
        Input::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
                Fields::Named(fs) => {
                    let mut inits = String::new();
                    for f in &fs {
                        inits.push_str(&format!(
                            "{f}: ::serde::Deserialize::from_value(v.field(\"{f}\")?)?,"
                        ));
                    }
                    format!("::std::result::Result::Ok({name} {{ {inits} }})")
                }
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                Fields::Tuple(n) => {
                    let mut inits = String::new();
                    for idx in 0..n {
                        inits.push_str(&format!(
                            "::serde::Deserialize::from_value(v.index({idx})?)?,"
                        ));
                    }
                    format!("::std::result::Result::Ok({name}({inits}))")
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\
                   fn from_value(v: &::serde::Value) -> \
                       ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),"
                    )),
                    Fields::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok(\
                           {name}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let mut inits = String::new();
                        for idx in 0..*n {
                            inits.push_str(&format!(
                                "::serde::Deserialize::from_value(inner.index({idx})?)?,"
                            ));
                        }
                        data_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}({inits})),"
                        ));
                    }
                    Fields::Named(fs) => {
                        let mut inits = String::new();
                        for f in fs {
                            inits.push_str(&format!(
                                "{f}: ::serde::Deserialize::from_value(inner.field(\"{f}\")?)?,"
                            ));
                        }
                        data_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {inits} }}),"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\
                   fn from_value(v: &::serde::Value) -> \
                       ::std::result::Result<Self, ::serde::DeError> {{\
                     match v {{\
                       ::serde::Value::Str(s) => match s.as_str() {{\
                         {unit_arms}\
                         other => ::std::result::Result::Err(::serde::DeError::new(\
                             ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\
                       }},\
                       ::serde::Value::Map(m) if m.len() == 1 => {{\
                         let (tag, inner) = &m[0];\
                         match tag.as_str() {{\
                           {data_arms}\
                           other => ::std::result::Result::Err(::serde::DeError::new(\
                               ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\
                         }}\
                       }}\
                       _ => ::std::result::Result::Err(::serde::DeError::new(\
                           ::std::format!(\"invalid value for enum {name}\"))),\
                     }}\
                   }}\
                 }}"
            )
        }
    };
    src.parse().expect("serde_derive: generated impl must parse")
}
