//! Offline `serde_json` shim: renders and parses the vendored serde
//! shim's [`Value`] tree as JSON.
//!
//! Supports the calls the codebase makes — [`to_string`],
//! [`to_string_pretty`], [`from_str`] — with serde-compatible layout.

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// A serialisation or parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(v: f64, out: &mut String) {
    if v == v.trunc() && v.abs() < 1e15 {
        // Integral floats print without an exponent but with `.0` so the
        // value re-parses as a float.
        out.push_str(&format!("{v:.1}"));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_value(v: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * level), " ".repeat(w * (level + 1))),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => write_f64(*n, out),
        Value::Str(s) => escape_into(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(item, indent, level + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, indent, level + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Serialises `value` to compact JSON.
///
/// # Errors
///
/// Infallible for the shim's value model; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialises `value` to 2-space-indented JSON.
///
/// # Errors
///
/// Infallible for the shim's value model (signature parity).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u codepoint"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 starting at the byte we
                    // just consumed.
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| Error::new("truncated UTF-8"))?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| Error::new("invalid UTF-8"))?,
                    );
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::new("expected `,` or `]`")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    entries.push((key, self.value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::new("expected `,` or `}`")),
                    }
                }
            }
            _ => self.number(),
        }
    }
}

/// Parses a JSON document into a [`Value`].
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON.
pub fn value_from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

/// Parses a JSON document into `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    Ok(T::from_value(&value_from_str(s)?)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_containers() {
        let v = Value::Map(vec![
            ("a".to_string(), Value::I64(-3)),
            ("b".to_string(), Value::Seq(vec![Value::F64(1.5), Value::Bool(true)])),
            ("c".to_string(), Value::Str("x\"y\n".to_string())),
            ("d".to_string(), Value::Null),
        ]);
        let s = to_string(&v).unwrap();
        assert_eq!(value_from_str(&s).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(value_from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn integral_floats_keep_their_type() {
        let s = to_string(&Value::F64(2.0)).unwrap();
        assert_eq!(s, "2.0");
        assert_eq!(value_from_str("2.0").unwrap(), Value::F64(2.0));
        assert_eq!(value_from_str("2").unwrap(), Value::I64(2));
    }

    #[test]
    fn typed_roundtrip() {
        let xs = vec![1.25f32, -0.5, 3.0];
        let s = to_string(&xs).unwrap();
        let back: Vec<f32> = from_str(&s).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn rejects_garbage() {
        assert!(value_from_str("{oops}").is_err());
        assert!(value_from_str("[1,]").is_err());
        assert!(value_from_str("1 2").is_err());
    }
}
