//! Offline serde shim: a value-tree data model instead of the real
//! visitor architecture.
//!
//! The genuine serde crates are unavailable in this build environment,
//! so this shim provides the same *surface* the codebase uses —
//! `#[derive(Serialize, Deserialize)]` plus `serde_json::{to_string,
//! to_string_pretty, from_str}` — over a much simpler core: types
//! convert to and from a [`Value`] tree, and `serde_json` renders that
//! tree. The JSON layout matches serde's defaults (externally-tagged
//! enums, newtype structs as their inner value), so files written by
//! this shim remain readable by real serde later.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer too large for `i64`.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object with insertion-ordered keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of a [`Value::Map`].
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] if `self` is not a map or lacks the key.
    pub fn field(&self, name: &str) -> Result<&Value, DeError> {
        match self {
            Value::Map(m) => m
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError::new(format!("missing field `{name}`"))),
            _ => Err(DeError::new(format!("expected object with field `{name}`"))),
        }
    }

    /// Looks up an element of a [`Value::Seq`].
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] if `self` is not a sequence or is too short.
    pub fn index(&self, i: usize) -> Result<&Value, DeError> {
        match self {
            Value::Seq(s) => {
                s.get(i).ok_or_else(|| DeError::new(format!("missing element {i}")))
            }
            _ => Err(DeError::new(format!("expected array with element {i}"))),
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(v) => Some(*v as f64),
            Value::U64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            // Non-finite floats round-trip through strings (JSON has no
            // literal for them).
            Value::Str(s) => match s.as_str() {
                "Infinity" => Some(f64::INFINITY),
                "-Infinity" => Some(f64::NEG_INFINITY),
                "NaN" => Some(f64::NAN),
                _ => None,
            },
            _ => None,
        }
    }
}

/// A deserialisation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree does not match `Self`'s shape.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                // Runtime range check (not try_from) so signed types,
                // where it is vacuously true, don't trip pattern lints.
                let wide = *self as i128;
                if wide >= i64::MIN as i128 && wide <= i64::MAX as i128 {
                    Value::I64(wide as i64)
                } else {
                    Value::U64(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let fail = || DeError::new(concat!("expected ", stringify!($t)));
                match v {
                    Value::I64(n) => <$t>::try_from(*n).map_err(|_| fail()),
                    Value::U64(n) => <$t>::try_from(*n).map_err(|_| fail()),
                    // Integers that travelled through a float representation.
                    Value::F64(n) if n.fract() == 0.0 => Ok(*n as $t),
                    _ => Err(fail()),
                }
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as f64;
                if v.is_finite() {
                    Value::F64(v)
                } else if v.is_nan() {
                    Value::Str("NaN".to_string())
                } else if v > 0.0 {
                    Value::Str("Infinity".to_string())
                } else {
                    Value::Str("-Infinity".to_string())
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| DeError::new(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::new("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(s) => s.iter().map(T::from_value).collect(),
            _ => Err(DeError::new("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok((A::from_value(v.index(0)?)?, B::from_value(v.index(1)?)?))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<K, V> Serialize for std::collections::BTreeMap<K, V>
where
    K: std::fmt::Display,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect())
    }
}

impl<K, V> Deserialize for std::collections::BTreeMap<K, V>
where
    K: std::str::FromStr + Ord,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(m) => m
                .iter()
                .map(|(k, val)| {
                    let key = k
                        .parse()
                        .map_err(|_| DeError::new(format!("unparseable key `{k}`")))?;
                    Ok((key, V::from_value(val)?))
                })
                .collect(),
            _ => Err(DeError::new("expected object")),
        }
    }
}

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        // Deterministic output regardless of hasher state.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize, S> Deserialize for std::collections::HashMap<String, V, S>
where
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(m) => m
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            _ => Err(DeError::new("expected object")),
        }
    }
}
