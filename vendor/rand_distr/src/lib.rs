//! Offline shim for the subset of `rand_distr` that msrl-rs uses:
//! [`Distribution`], [`Normal`], and [`StandardNormal`].
//!
//! Normal variates come from the Box–Muller transform — numerically
//! unspectacular but exact in distribution, which is all the tensor
//! initialisers and Gaussian policies require.

use rand::RngCore;

/// Types that can sample values of `T` from a generator.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard normal distribution `N(0, 1)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardNormal;

fn box_muller<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // u ∈ (0, 1] so ln(u) is finite.
    let u = 1.0 - rng.unit_f64();
    let v = rng.unit_f64();
    (-2.0 * u.ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos()
}

impl Distribution<f64> for StandardNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        box_muller(rng)
    }
}

impl Distribution<f32> for StandardNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        box_muller(rng) as f32
    }
}

/// Error from [`Normal::new`] with a non-finite or negative scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalError;

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid normal-distribution parameters")
    }
}

impl std::error::Error for NormalError {}

/// A normal distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy)]
pub struct Normal<T> {
    mean: T,
    std_dev: T,
}

/// Float types [`Normal`] is generic over (`f32`/`f64`); a single
/// generic `Normal::new` keeps type inference working at call sites
/// like `Normal::new(0.0f32, s)`.
pub trait NormalFloat: Copy {
    /// True for finite (non-NaN, non-infinite) values.
    fn finite(self) -> bool;
    /// True for values below zero.
    fn negative(self) -> bool;
    /// Narrowing conversion from `f64`.
    fn of_f64(v: f64) -> Self;
    /// `self + scale * z`.
    fn mul_add_from(self, scale: Self, z: Self) -> Self;
}

macro_rules! normal_float {
    ($($t:ty),*) => {$(
        impl NormalFloat for $t {
            fn finite(self) -> bool {
                self.is_finite()
            }
            fn negative(self) -> bool {
                self < 0.0
            }
            fn of_f64(v: f64) -> Self {
                v as $t
            }
            fn mul_add_from(self, scale: Self, z: Self) -> Self {
                self + scale * z
            }
        }
    )*};
}

normal_float!(f32, f64);

impl<T: NormalFloat> Normal<T> {
    /// Creates `N(mean, std_dev²)`.
    ///
    /// # Errors
    ///
    /// Returns [`NormalError`] for non-finite or negative `std_dev`.
    pub fn new(mean: T, std_dev: T) -> Result<Self, NormalError> {
        if !std_dev.finite() || std_dev.negative() || !mean.finite() {
            return Err(NormalError);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl<T: NormalFloat> Distribution<T> for Normal<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        self.mean.mul_add_from(self.std_dev, T::of_f64(box_muller(rng)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_right() {
        let mut r = StdRng::seed_from_u64(5);
        let d = Normal::new(3.0f64, 2.0).unwrap();
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
        assert!((var - 4.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Normal::new(0.0f32, -1.0).is_err());
        assert!(Normal::new(f32::NAN, 1.0).is_err());
        assert!(Normal::new(0.0f32, 1.0).is_ok());
    }
}
