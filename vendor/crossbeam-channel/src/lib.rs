//! Offline `crossbeam-channel` shim: unbounded MPMC channels built on
//! `Mutex` + `Condvar`.
//!
//! Covers the surface the codebase uses — [`unbounded`], cloneable
//! [`Sender`]/[`Receiver`], `send`/`recv`/`try_recv`, and the
//! disconnect-aware error types.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// The sending half of an unbounded channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of an unbounded channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Error returned by [`Sender::send`] when every receiver is gone; the
/// unsent message is handed back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty but senders remain.
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

impl std::fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "receiving on an empty channel"),
            TryRecvError::Disconnected => {
                write!(f, "receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

impl<T> Sender<T> {
    /// Enqueues `msg`, waking one blocked receiver.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] holding `msg` if every receiver dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        if self.shared.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(msg));
        }
        self.shared.queue.lock().unwrap().push_back(msg);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::AcqRel);
        Sender { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender: wake blocked receivers so they observe the
            // disconnect.
            self.shared.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or all senders disconnect.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] when the channel is empty and every sender
    /// dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.shared.queue.lock().unwrap();
        loop {
            if let Some(msg) = queue.pop_front() {
                return Ok(msg);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            queue = self.shared.ready.wait(queue).unwrap();
        }
    }

    /// Pops a message without blocking.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] when no message is queued,
    /// [`TryRecvError::Disconnected`] when additionally every sender
    /// dropped.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.shared.queue.lock().unwrap();
        if let Some(msg) = queue.pop_front() {
            return Ok(msg);
        }
        if self.shared.senders.load(Ordering::Acquire) == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::AcqRel);
        Receiver { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_after_senders_drop() {
        let (tx, rx) = unbounded::<i32>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(3), Err(SendError(3)));
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let handle = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(rx.recv().unwrap());
        }
        handle.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
