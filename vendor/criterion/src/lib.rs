//! Offline `criterion` shim.
//!
//! Provides the macro and type surface the benches use —
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion`],
//! `benchmark_group`/`bench_function`/`bench_with_input`,
//! [`BenchmarkId`], `Bencher::iter` — over a plain wall-clock sampler.
//!
//! Mode selection matches real criterion: with `--bench` on the command
//! line (what `cargo bench` passes) each benchmark is sampled
//! `sample_size` times and the median ns/iter is printed; without it
//! (what `cargo test` does) each benchmark body runs once as a smoke
//! test.

use std::time::Instant;

/// Re-export so benches can use `criterion::black_box`.
pub use std::hint::black_box;

fn bench_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// Identifies a parameterised benchmark: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { full: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { full: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.full)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs and times the
/// routine.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled in by `iter`.
    ns_per_iter: f64,
    sample_size: usize,
    measure: bool,
}

impl Bencher {
    /// Times `routine`, storing the median ns/iter over `sample_size`
    /// samples (or running it once in test mode).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if !self.measure {
            black_box(routine());
            self.ns_per_iter = 0.0;
            return;
        }
        // Warm-up, and pick an iteration count targeting ~2 ms per
        // sample so cheap routines aren't dominated by timer overhead.
        let t0 = Instant::now();
        black_box(routine());
        let once_ns = t0.elapsed().as_nanos().max(1);
        let iters = (2_000_000 / once_ns).clamp(1, 10_000) as u64;

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    /// Runs a benchmark identified by `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, f);
        self
    }

    /// Runs a benchmark that borrows a setup input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API parity; prints nothing extra).
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measure: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100, measure: bench_mode() }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        self.run_one(name, f);
        self
    }

    fn run_one<F: FnOnce(&mut Bencher)>(&mut self, full_name: &str, f: F) {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            sample_size: self.sample_size,
            measure: self.measure,
        };
        f(&mut b);
        if self.measure {
            println!("{full_name:<48} {:>14.0} ns/iter", b.ns_per_iter);
        } else {
            println!("test {full_name} ... ok (smoke)");
        }
    }
}

/// Declares a function that runs a list of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_target(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.bench_function("fixed", |b| b.iter(|| black_box(2 + 2)));
        group.bench_with_input(BenchmarkId::new("param", 8), &8usize, |b, &n| {
            b.iter(|| black_box((0..n).sum::<usize>()))
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(1)));
    }

    criterion_group!(
        name = smoke;
        config = Criterion::default().sample_size(2);
        targets = sample_target
    );

    #[test]
    fn group_runs_without_bench_flag() {
        // In test mode each routine executes once and must not panic.
        smoke();
    }
}
