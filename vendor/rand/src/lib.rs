//! Offline shim implementing the subset of the `rand` 0.8 API that
//! msrl-rs uses: [`rngs::StdRng`], the [`Rng`] and [`SeedableRng`]
//! traits, and `gen_range` over half-open and inclusive numeric ranges.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate stands in for the real `rand`. The generator is xoshiro256++
//! seeded through SplitMix64 — not the real StdRng (ChaCha12), but a
//! high-quality deterministic stream that satisfies every statistical
//! check in the test suite. Streams are stable across runs and
//! platforms, which is what the reproduction's determinism tests need.

use std::ops::{Range, RangeInclusive};

/// A type that can be sampled uniformly from by an [`Rng`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is < 2^-64 for the spans used here.
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                self.start + (self.end - self.start) * (rng.unit_f64() as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                lo + (hi - lo) * (rng.unit_f64() as $t)
            }
        }
    )*};
}

float_range!(f32, f64);

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 raw bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from a half-open or inclusive range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniform standard value: `f32`/`f64` in `[0, 1)`, full-range
    /// integers, or a fair `bool`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.unit_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a canonical "standard" distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws the standard value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.unit_f64() as f32
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.unit_f64()
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded via
    /// SplitMix64 (the recommended seeding procedure for the xoshiro
    /// family).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let run: Vec<u64> = (0..16).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let other: Vec<u64> = (0..16).map(|_| c.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(run, other);
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f32 = r.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&v));
            let w: f32 = r.gen_range(-1.0f32..=1.0);
            assert!((-1.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut r = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
