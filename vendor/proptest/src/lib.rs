//! Offline `proptest` shim.
//!
//! The real proptest (strategy combinators, shrinking, persistence) is
//! unavailable in this build environment. This shim keeps the same
//! *test-author surface* — `proptest! { #[test] fn f(x in strategy) {..} }`,
//! `prop_assert!`, `prop_assert_eq!`, `any::<T>()`,
//! `proptest::collection::{vec, btree_set}`, range strategies — and runs
//! each property over a deterministic sweep of pseudo-random cases. No
//! shrinking: a failing case reports its case index and seed so it can be
//! replayed.

/// Deterministic case runner internals used by the [`proptest!`] macro.
pub mod test_runner {
    /// Number of pseudo-random cases each property runs (overridable via
    /// the `PROPTEST_CASES` environment variable, as with real proptest).
    pub fn case_count() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// A failed property case; carries the assertion message.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError { msg: msg.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.msg)
        }
    }

    /// SplitMix64 generator: tiny, statistically adequate for test-case
    /// generation, and fully deterministic from its seed.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds a generator for one test case.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1) }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            // Modulo bias is irrelevant at test-case-generation quality.
            self.next_u64() % bound
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;

    /// A source of pseudo-random values of one type.
    pub trait Strategy {
        /// The value type this strategy produces.
        type Value;
        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u64;
                    (lo + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    /// Strategy produced by [`Just`]: always yields a clone of the value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`super::arbitrary::any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

    impl<T> AnyStrategy<T> {
        pub(crate) fn new() -> Self {
            AnyStrategy(std::marker::PhantomData)
        }
    }

    impl Strategy for AnyStrategy<bool> {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! any_full_range {
        ($($t:ty),*) => {$(
            impl Strategy for AnyStrategy<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    any_full_range!(u8, u16, u32, u64, i8, i16, i32, i64, usize, isize);
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::AnyStrategy;

    /// Returns the default strategy for `T` (full value range).
    pub fn any<T>() -> AnyStrategy<T>
    where
        AnyStrategy<T>: super::strategy::Strategy,
    {
        AnyStrategy::new()
    }
}

/// Collection strategies: `vec` and `btree_set`.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// A size specification: a fixed length or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn from `size` (a `usize` or `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy for `BTreeSet<S::Value>`; duplicates collapse, so the
    /// realised size may be below the draw (matching real proptest's
    /// tolerance for small element domains).
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Generates ordered sets with up to `size` elements from `element`.
    pub fn btree_set<S: Strategy>(
        element: S,
        size: impl Into<SizeRange>,
    ) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { element, size: size.into() }
    }
}

/// Glob-import module mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines property tests. Each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that sweeps `PROPTEST_CASES` deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cases = $crate::test_runner::case_count();
            $(let $arg = &$strat;)+
            for case in 0..cases {
                let mut rng = $crate::test_runner::TestRng::from_seed(
                    (case as u64) ^ 0xa076_1d64_78bd_642f,
                );
                $(let $arg = $crate::strategy::Strategy::new_value($arg, &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(e) = outcome {
                    panic!("property failed at case {case}: {e}");
                }
            }
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body, failing the current
/// case (not the whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right` (left: `{:?}`, right: `{:?}`)",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u8..9, y in -2.0f32..2.0, b in any::<bool>()) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!(b || !b);
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(0usize..5, 1..12),
            s in crate::collection::btree_set(1usize..9, 0..4),
        ) {
            prop_assert!((1..12).contains(&v.len()));
            prop_assert!(s.len() < 4);
            prop_assert!(v.iter().all(|&x| x < 5));
            prop_assert!(s.iter().all(|&x| (1..9).contains(&x)));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::from_seed(7);
        let mut b = crate::test_runner::TestRng::from_seed(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
