//! Multi-agent RL: MAPPO on the MPE scenarios — cooperative coverage
//! (`simple_spread`) and the predator–prey game (`simple_tag`) used in
//! the paper's GPU-only experiments.
//!
//! ```sh
//! cargo run --release --example marl_predator_prey
//! ```
//!
//! Demonstrates: parameter-shared MAPPO on real MPE physics, and the
//! DP-E deployment (dedicated environment worker + one fragment per
//! agent) from §7.4.

use msrl_algos::mappo::Mappo;
use msrl_algos::ppo::PpoConfig;
use msrl_env::mpe::{SimpleSpread, SimpleTag};
use msrl_env::MultiAgentEnvironment;
use msrl_runtime::exec::{run_dp_e, DpEConfig};

fn main() {
    // 1. Cooperative coverage with in-process MAPPO.
    println!("— MAPPO on simple_spread (3 agents cover 3 landmarks) —");
    let mut env = SimpleSpread::new(3, 1).with_horizon(20);
    let cfg = PpoConfig { lr: 7e-4, epochs: 4, entropy_coef: 0.005, ..PpoConfig::default() };
    let mut mappo = Mappo::new(&env, &[32, 32], cfg.clone(), 2);
    let mut first = 0.0;
    let mut last = 0.0;
    for i in 0..30 {
        let r = mappo.train_iteration(&mut env, 8).expect("training iteration");
        if i < 5 {
            first += r / 5.0;
        }
        if i >= 25 {
            last += r / 5.0;
        }
    }
    println!("mean per-agent step reward: {first:.3} → {last:.3} (higher is better)");
    println!("final mean coverage distance: {:.3}", env.mean_coverage_distance());

    // 2. Predator–prey: roles with opposing rewards.
    println!("\n— simple_tag roster (3 chasers vs 1 runner) —");
    let mut tag = SimpleTag::new(3, 1, 5);
    let obs = tag.reset();
    println!(
        "agents: {} ({} chasers + {} runners), obs width {}",
        tag.n_agents(),
        tag.n_chasers(),
        tag.n_runners(),
        obs[0].len()
    );

    // 3. The distributed deployment of §7.4: env worker + agent fragments.
    println!("\n— DP-E: dedicated env worker + one fragment per agent —");
    let dpe = DpEConfig {
        episodes: 15,
        hidden: vec![32],
        ppo: cfg,
        seed: 3,
        fusion: msrl_tensor::par::fusion_enabled(),
    };
    let report = run_dp_e(|| SimpleSpread::new(3, 9).with_horizon(20), &dpe).expect("DP-E runs");
    println!(
        "distributed MAPPO: mean step reward {:.3} → {:.3} over {} episodes",
        report.iteration_rewards[..3].iter().sum::<f32>() / 3.0,
        report.iteration_rewards[12..].iter().sum::<f32>() / 3.0,
        report.iteration_rewards.len()
    );
}
