//! Quickstart: specify an RL algorithm once, then deploy and train it
//! under a distribution policy — without touching the algorithm.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The flow mirrors the paper's Fig. 6: algorithm + deployment configs →
//! coordinator (trace → Algorithm 2 → placement) → worker threads
//! executing the placed fragments for real.

use msrl_core::config::{AlgorithmConfig, DeploymentConfig, PolicyName};
use msrl_env::cartpole::CartPole;
use msrl_env::Environment;
use msrl_runtime::exec::{run_dp_a, DistPpoConfig};
use msrl_runtime::Coordinator;

fn main() {
    // 1. The algorithm configuration: logical components only.
    let algo = AlgorithmConfig::ppo(/* actors */ 3, /* envs each */ 4);

    // 2. The deployment configuration: resources + a distribution policy.
    let deploy = DeploymentConfig::workers(2, 2, PolicyName::SingleLearnerCoarse);

    // 3. The coordinator traces the training loop, runs Algorithm 2 and
    //    applies the policy.
    let probe = CartPole::new(0);
    let deployment = Coordinator::deploy_ppo(
        &algo,
        &deploy,
        probe.obs_dim(),
        probe.action_spec().policy_width(),
        64,
    )
    .expect("PPO deploys under DP-A");
    println!("— fragmented dataflow graph + placement —");
    println!("{}", deployment.describe());

    // 4. Execute: one thread per placed fragment, real collectives.
    println!("— training CartPole under DP-A —");
    let dist = DistPpoConfig {
        actors: 3,
        envs_per_actor: 4,
        steps_per_iter: 64,
        iterations: 30,
        hidden: vec![32, 32],
        seed: 7,
        ..DistPpoConfig::default()
    };
    let report =
        run_dp_a(|actor, i| CartPole::new((actor * 10 + i) as u64), &dist).expect("training runs");
    for (i, r) in report.iteration_rewards.iter().enumerate() {
        if i % 5 == 4 {
            println!("iteration {:>3}: mean episode reward {r:.1}", i + 1);
        }
    }
    println!(
        "\nreward improved {:.1} → {:.1} (CartPole solves near 500)",
        report.early_reward(5),
        report.recent_reward(5)
    );

    // With MSRL_TRACE=1 MSRL_TRACE_FILE=trace.json set, dump the Chrome
    // trace of the run (open it in Perfetto or chrome://tracing).
    if let Some(path) = msrl_telemetry::write_trace_to_env_file().expect("trace file writable") {
        println!("wrote Chrome trace to {path}");
    }
}
