//! Continuous-control locomotion: PPO with a diagonal-Gaussian policy on
//! the HalfCheetah-style planar locomotion simulator — the robotics
//! workload the paper's introduction motivates.
//!
//! ```sh
//! cargo run --release --example locomotion_halfcheetah
//! ```
//!
//! Demonstrates: continuous action spaces end-to-end (Gaussian log-probs
//! through the learner's autograd), and the same run repeated under two
//! distribution policies (DP-A and DP-C) with no algorithm change.

use msrl_env::halfcheetah::HalfCheetah;
use msrl_runtime::exec::{run_dp_a, run_dp_c, DistPpoConfig};

fn main() {
    let dist = DistPpoConfig {
        actors: 2,
        envs_per_actor: 4,
        steps_per_iter: 128,
        iterations: 20,
        hidden: vec![64, 64],
        seed: 21,
        ..DistPpoConfig::default()
    };
    let make = |a: usize, i: usize| HalfCheetah::new((a * 100 + i) as u64).with_horizon(128);

    println!("— PPO on HalfCheetah (continuous torques), DP-A —");
    let a = run_dp_a(make, &dist).expect("DP-A runs");
    println!(
        "DP-A: mean step reward {:.3} → {:.3}",
        a.early_reward(5) / 128.0,
        a.recent_reward(5) / 128.0
    );

    println!("\n— identical algorithm, switched to DP-C (data-parallel learners) —");
    let c = run_dp_c(make, &dist).expect("DP-C runs");
    println!(
        "DP-C: mean step reward {:.3} → {:.3}",
        c.early_reward(5) / 128.0,
        c.recent_reward(5) / 128.0
    );

    println!(
        "\nboth policies trained the same continuous-control algorithm; the\n\
         deployment configuration was the only thing that changed."
    );
}
