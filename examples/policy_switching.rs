//! The paper's headline capability: one algorithm, many distribution
//! policies.
//!
//! ```sh
//! cargo run --release --example policy_switching
//! ```
//!
//! Trains the *identical* PPO implementation under four distribution
//! policies — DP-A (single learner, coarse), DP-B (central inference,
//! per-step), DP-C (data-parallel learners) and DP-F (parameter server)
//! — by changing only the driver, exactly as MSRL switches policies by
//! changing only the deployment configuration.

use msrl_env::cartpole::CartPole;
use msrl_runtime::exec::{run_dp_a, run_dp_b, run_dp_c, run_dp_f, DistPpoConfig, TrainingReport};

fn main() {
    let dist = DistPpoConfig {
        actors: 2,
        envs_per_actor: 4,
        steps_per_iter: 64,
        iterations: 20,
        hidden: vec![32, 32],
        seed: 13,
        ..DistPpoConfig::default()
    };
    let make = |a: usize, i: usize| CartPole::new((a * 17 + i) as u64);

    let runs: Vec<(&str, &str, TrainingReport)> = vec![
        (
            "DP-A",
            "replicated actors, 1 learner, per-episode sync (Acme-style)",
            run_dp_a(make, &dist).expect("DP-A"),
        ),
        (
            "DP-B",
            "actors+envs on CPU, central inference, per-step sync (SEED-RL-style)",
            run_dp_b(make, &dist).expect("DP-B"),
        ),
        (
            "DP-C",
            "fused actor+learners, gradient AllReduce (data-parallel)",
            run_dp_c(make, &dist).expect("DP-C"),
        ),
        (
            "DP-F",
            "workers push gradients to a parameter server (OSDI'14-style)",
            run_dp_f(make, &dist).expect("DP-F"),
        ),
    ];

    println!("same PPO implementation, four execution strategies:\n");
    println!("{:<6} {:>10} {:>10}   strategy", "policy", "start", "end");
    for (name, desc, report) in &runs {
        println!(
            "{name:<6} {:>10.1} {:>10.1}   {desc}",
            report.early_reward(3),
            report.recent_reward(3)
        );
    }
    let all_improve = runs.iter().all(|(_, _, r)| r.recent_reward(3) > r.early_reward(3));
    println!("\nall four policies improved the same algorithm: {all_improve}");
}
